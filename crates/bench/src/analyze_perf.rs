//! Critical-path analyzer overhead measurement and its CI gate.
//!
//! `threelc analyze` runs [`threelc_obs::RunAnalysis::build`] once at the
//! end of a traced run (the server also embeds the result in its
//! `NetReport`), so the cost that matters is *per analyzed step*: merge
//! the node traces, tile every step's critical path, aggregate, and flag.
//! [`measure`] times:
//!
//! - one run-level analysis (timeline merge + per-step tiling) over a
//!   realistic three-lane trace, amortized per step,
//! - one text rendering of the result (the interactive `threelc analyze`
//!   hot path),
//! - a full in-process cluster step (the denominator pricing the real
//!   workload, exactly as the recorder gate does).
//!
//! The gated metric is `analyze_step_ns / static_step_ns`: the fraction
//! of one training step that analyzing one step costs. Best-of-N and the
//! calibration-scaling scheme from [`crate::perf`] keep the <2% gate out
//! of wall-clock-jitter territory.

use crate::perf::{best_of, calibrate};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use threelc_baselines::SchemeKind;
use threelc_distsim::{Cluster, ExperimentConfig};
use threelc_obs::trace::{NodeTrace, SpanRecord};
use threelc_obs::{AnalysisConfig, MergedTimeline, RunAnalysis, NO_WORKER};

/// Maximum fraction of a static step that analyzing one step may cost.
pub const MAX_ANALYZE_OVERHEAD: f64 = 0.02;
/// Allowed fractional slowdown of the per-step analysis against the
/// calibration-scaled baseline (the quantity is microseconds, where
/// scheduler noise is proportionally large).
pub const MAX_ANALYZE_REGRESSION: f64 = 0.5;
/// Steps in the synthetic trace the analyzer is timed over.
pub const TRACE_STEPS: u64 = 64;
/// Workers in the synthetic trace.
pub const TRACE_WORKERS: i64 = 4;
/// Cluster steps folded into one timed sample.
const STEP_BATCH: usize = 4;

/// An analyzer-overhead measurement run, as written to `BENCH_pr9.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeBenchReport {
    /// Hardware parallelism of the measuring host.
    pub host_cpus: usize,
    /// Nanoseconds for the fixed calibration workload on this host.
    pub calibration_ns: f64,
    /// Steps in the analyzed trace.
    pub steps: u64,
    /// Workers in the analyzed trace.
    pub workers: i64,
    /// Best-of-N nanoseconds to merge and analyze the whole trace,
    /// divided by [`AnalyzeBenchReport::steps`].
    pub analyze_step_ns: f64,
    /// Best-of-N nanoseconds to render the analysis as text.
    pub render_ns: f64,
    /// Best-of-N nanoseconds for one cluster step, static policy.
    pub static_step_ns: f64,
    /// `analyze_step_ns / static_step_ns` — the gated metric.
    pub overhead: f64,
}

/// The cluster priced as the denominator runs the same worker count as
/// the synthetic trace — the gate compares analyzing one step of an
/// N-worker run against stepping that same N-worker run.
fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scheme: SchemeKind::three_lc(1.0),
        workers: TRACE_WORKERS as usize,
        batch_per_worker: 8,
        total_steps: u64::MAX, // stepped manually; never reached
        model_width: 64,
        model_blocks: 2,
        eval_every: 0,
        seed: 11,
        ..Default::default()
    }
}

fn rec(name: &str, node: &str, step: u64, worker: i64, start: u64, end: u64) -> SpanRecord {
    SpanRecord {
        trace: 1,
        span: (start ^ end ^ step).wrapping_mul(2).wrapping_add(1),
        parent: 0,
        name: name.into(),
        node: node.into(),
        step,
        worker,
        start_ns: start,
        end_ns: end,
    }
}

/// A realistic traced run: per step, every worker records its full
/// pipeline (compute → quantize → encode → serialize → network → pull)
/// and the server records per-worker recv_push/send_pull around its
/// serial decode → aggregate → re-encode chain — the span density the
/// networked runtime actually produces.
pub fn synthetic_trace(steps: u64, workers: i64) -> Vec<NodeTrace> {
    let mut nodes = Vec::new();
    let mut server = Vec::new();
    for step in 0..steps {
        let base = step * 2_000_000; // 2 ms steps
        for w in 0..workers {
            let jitter = (w as u64) * 11_000;
            server.push(rec(
                "recv_push",
                "server",
                step,
                w,
                base,
                base + 700_000 + jitter,
            ));
            server.push(rec(
                "send_pull",
                "server",
                step,
                w,
                base + 1_400_000,
                base + 1_450_000 + jitter,
            ));
        }
        server.push(rec(
            "barrier",
            "server",
            step,
            NO_WORKER,
            base,
            base + 760_000,
        ));
        server.push(rec(
            "server-decode",
            "server",
            step,
            NO_WORKER,
            base + 800_000,
            base + 1_000_000,
        ));
        server.push(rec(
            "aggregate",
            "server",
            step,
            NO_WORKER,
            base + 1_000_000,
            base + 1_200_000,
        ));
        server.push(rec(
            "re-encode",
            "server",
            step,
            NO_WORKER,
            base + 1_200_000,
            base + 1_400_000,
        ));
    }
    nodes.push(NodeTrace {
        clock: "server".into(),
        spans: server,
        dropped: 0,
    });
    for w in 0..workers {
        let lane = format!("worker{w}");
        let mut spans = Vec::new();
        for step in 0..steps {
            let base = step * 2_000_000;
            let jitter = (w as u64) * 11_000;
            let phases = [
                ("compute", 0u64, 300_000u64),
                ("quantize", 300_000, 400_000),
                ("encode", 400_000, 550_000),
                ("serialize", 550_000, 650_000),
                ("network", 650_000, 1_500_000 + jitter),
                ("pull", 1_500_000 + jitter, 1_700_000 + jitter),
            ];
            for (name, a, b) in phases {
                spans.push(rec(name, &lane, step, w, base + a, base + b));
            }
        }
        nodes.push(NodeTrace {
            clock: lane,
            spans,
            dropped: 0,
        });
    }
    nodes
}

/// Best-of-N nanoseconds for one full merge + analysis, per step.
fn measure_analyze(reps: usize) -> f64 {
    let nodes = synthetic_trace(TRACE_STEPS, TRACE_WORKERS);
    let cfg = AnalysisConfig::default();
    best_of(reps, || {
        let timeline = MergedTimeline::build(black_box(&nodes));
        black_box(RunAnalysis::build(&timeline, &cfg));
    }) / TRACE_STEPS as f64
}

/// Best-of-N nanoseconds to render the analysis as text.
fn measure_render(reps: usize) -> f64 {
    let nodes = synthetic_trace(TRACE_STEPS, TRACE_WORKERS);
    let analysis = RunAnalysis::build(&MergedTimeline::build(&nodes), &AnalysisConfig::default());
    best_of(reps, || {
        black_box(analysis.render_text(10));
    })
}

/// Best-of-N nanoseconds for one step of a cluster running the bench
/// configuration.
fn measure_step(reps: usize) -> f64 {
    let mut cluster = Cluster::new(bench_config());
    cluster.step(); // warm-up
    best_of(reps, || {
        for _ in 0..STEP_BATCH {
            cluster.step();
        }
    }) / STEP_BATCH as f64
}

/// Measures the analyzer micro-benchmarks and the cluster step, best of
/// `reps`.
pub fn measure(reps: usize) -> AnalyzeBenchReport {
    let analyze_step_ns = measure_analyze(reps);
    let render_ns = measure_render(reps);
    let static_step_ns = measure_step(reps);
    AnalyzeBenchReport {
        host_cpus: threelc::parallel::available_threads(),
        calibration_ns: calibrate(reps),
        steps: TRACE_STEPS,
        workers: TRACE_WORKERS,
        analyze_step_ns,
        render_ns,
        static_step_ns,
        overhead: analyze_step_ns / static_step_ns,
    }
}

impl AnalyzeBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host_cpus {}  calibration {:.0} ns",
            self.host_cpus, self.calibration_ns
        );
        let _ = writeln!(
            out,
            "analyze ({} steps × {} workers) {:>10.0} ns/step",
            self.steps, self.workers, self.analyze_step_ns
        );
        let _ = writeln!(out, "render_text         {:>10.0} ns", self.render_ns);
        let _ = writeln!(out, "step (static)       {:>10.0} ns", self.static_step_ns);
        let _ = writeln!(
            out,
            "analyzer overhead   {:>10.3}% of a static step (gate < {:.0}%)",
            self.overhead * 100.0,
            MAX_ANALYZE_OVERHEAD * 100.0
        );
        out
    }
}

/// Compares `current` against `baseline`: analyzing one step must stay
/// under [`MAX_ANALYZE_OVERHEAD`] of a static step, and the per-step
/// analysis may be at most [`MAX_ANALYZE_REGRESSION`] slower than the
/// calibration-scaled baseline.
///
/// # Errors
///
/// Returns the concatenated violations (one per line) if any check
/// fails.
pub fn gate(current: &AnalyzeBenchReport, baseline: &AnalyzeBenchReport) -> Result<String, String> {
    let mut violations = Vec::new();
    if !current.overhead.is_finite() || current.overhead >= MAX_ANALYZE_OVERHEAD {
        violations.push(format!(
            "analyzing one step costs {:.3}% of a static step, gate is {:.0}%",
            current.overhead * 100.0,
            MAX_ANALYZE_OVERHEAD * 100.0
        ));
    }
    let scale = if current.calibration_ns > 0.0 && baseline.calibration_ns > 0.0 {
        current.calibration_ns / baseline.calibration_ns
    } else {
        1.0
    };
    if (current.steps, current.workers) == (baseline.steps, baseline.workers) {
        let allowed = baseline.analyze_step_ns * scale * (1.0 + MAX_ANALYZE_REGRESSION);
        if current.analyze_step_ns > allowed {
            violations.push(format!(
                "analyze/{} steps regressed: {:.0} ns/step vs allowed {:.0} (baseline {:.0} × host scale {:.2} × {:.0}%)",
                current.steps,
                current.analyze_step_ns,
                allowed,
                baseline.analyze_step_ns,
                scale,
                (1.0 + MAX_ANALYZE_REGRESSION) * 100.0
            ));
        }
    } else {
        violations.push(format!(
            "baseline measured {} steps × {} workers, current measured {} × {}",
            baseline.steps, baseline.workers, current.steps, current.workers
        ));
    }
    if violations.is_empty() {
        Ok(format!(
            "analyze bench gate passed: overhead {:.3}% < {:.0}%, analyze {:.0} ns/step",
            current.overhead * 100.0,
            MAX_ANALYZE_OVERHEAD * 100.0,
            current.analyze_step_ns
        ))
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(overhead: f64, analyze_step_ns: f64) -> AnalyzeBenchReport {
        AnalyzeBenchReport {
            host_cpus: 4,
            calibration_ns: 1000.0,
            steps: TRACE_STEPS,
            workers: TRACE_WORKERS,
            analyze_step_ns,
            render_ns: 5000.0,
            static_step_ns: 1_000_000.0,
            overhead,
        }
    }

    #[test]
    fn gate_accepts_a_report_under_the_overhead_ceiling() {
        let r = report(0.001, 1000.0);
        let summary = gate(&r, &r).expect("identical reports pass");
        assert!(summary.contains("passed"), "{summary}");
    }

    #[test]
    fn gate_rejects_excess_overhead() {
        let bad = report(0.05, 1000.0);
        let err = gate(&bad, &report(0.001, 1000.0)).unwrap_err();
        assert!(err.contains("5.000%"), "{err}");
    }

    #[test]
    fn gate_rejects_an_analyze_regression() {
        let slow = report(0.001, 5000.0);
        let err = gate(&slow, &report(0.001, 1000.0)).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn gate_rejects_mismatched_trace_shapes() {
        let mut other = report(0.001, 1000.0);
        other.steps = 8;
        let err = gate(&report(0.001, 1000.0), &other).unwrap_err();
        assert!(err.contains("steps ×"), "{err}");
    }

    #[test]
    fn synthetic_trace_analyzes_conserved_with_no_bottleneck() {
        // The trace the bench times must itself be a healthy run — the
        // numbers are meaningless if the analyzer bails out early.
        let nodes = synthetic_trace(TRACE_STEPS, TRACE_WORKERS);
        let a = RunAnalysis::build(&MergedTimeline::build(&nodes), &AnalysisConfig::default());
        assert_eq!(a.steps.len(), TRACE_STEPS as usize);
        assert!(a.conservation_error < 1e-9, "{}", a.conservation_error);
        assert!(a.bottlenecks.is_empty(), "{:?}", a.bottlenecks);
    }

    #[test]
    fn measurement_reports_a_tiny_overhead() {
        // One rep keeps this test cheap; the point is that the measured
        // pipeline holds together and the overhead lands far under the
        // gate even in a debug build.
        let r = measure(1);
        assert!(r.analyze_step_ns > 0.0);
        assert!(r.render_ns > 0.0);
        assert!(r.static_step_ns > 0.0);
        assert!(r.overhead < MAX_ANALYZE_OVERHEAD, "overhead {}", r.overhead);
        let rendered = r.render();
        assert!(rendered.contains("analyzer overhead"), "{rendered}");
    }
}
