//! Minimal self-contained SVG line plots for the regenerated figures.
//!
//! No plotting dependency is available offline, so this renders the small
//! subset needed for the paper's figures: 2-D line+marker series, linear
//! axes with "nice" ticks, and a legend. Output is a standalone `.svg`.

use std::fmt::Write as _;

/// A color palette that cycles for successive series.
const PALETTE: [&str; 10] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 180.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// One named line in a [`LinePlot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlotSeries {
    /// Legend label.
    pub name: String,
    /// (x, y) points in drawing order.
    pub points: Vec<(f64, f64)>,
}

/// A 2-D line plot with axes, ticks, and a legend.
///
/// ```
/// use threelc_bench::plot::{LinePlot, PlotSeries};
/// let svg = LinePlot::new("demo", "x", "y")
///     .with_series(PlotSeries { name: "a".into(), points: vec![(0.0, 1.0), (2.0, 3.0)] })
///     .render_svg();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<PlotSeries>,
}

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        LinePlot {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder-style).
    pub fn with_series(mut self, series: PlotSeries) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a series in place.
    pub fn push_series(&mut self, series: PlotSeries) {
        self.series.push(series);
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for s in &self.series {
            for &(x, y) in &s.points {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        // Pad degenerate ranges.
        if (x_max - x_min).abs() < 1e-12 {
            x_min -= 0.5;
            x_max += 0.5;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_min -= 0.5;
            y_max += 0.5;
        }
        (x_min, x_max, y_min, y_max)
    }

    /// Renders the plot as a standalone SVG document.
    pub fn render_svg(&self) -> String {
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"##
        );
        let _ = write!(
            svg,
            r##"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"##
        );
        // Title.
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="22" text-anchor="middle" font-size="15">{}</text>"##,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );
        // Axes box.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##
        );
        // Ticks and grid.
        for t in nice_ticks(x_min, x_max, 6) {
            let x = sx(t);
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                MARGIN_T,
                MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r##"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"##,
                MARGIN_T + plot_h + 18.0,
                format_tick(t)
            );
        }
        for t in nice_ticks(y_min, y_max, 6) {
            let y = sy(t);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r##"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"##,
                MARGIN_L - 6.0,
                y + 4.0,
                format_tick(t)
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"##,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r##"<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"##,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = write!(
                svg,
                r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"##,
                pts.join(" ")
            );
            for &(x, y) in &s.points {
                let _ = write!(
                    svg,
                    r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"##,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + i as f64 * 18.0;
            let lx = WIDTH - MARGIN_R + 12.0;
            let _ = write!(
                svg,
                r##"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"##,
                lx + 18.0
            );
            let _ = write!(
                svg,
                r##"<text x="{:.1}" y="{:.1}">{}</text>"##,
                lx + 24.0,
                ly + 4.0,
                escape(&s.name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

/// Rounds the tick step to a 1/2/5 × 10ⁿ "nice" number and returns ticks
/// covering `[min, max]`.
fn nice_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    let span = max - min;
    if span <= 0.0 || !span.is_finite() {
        return vec![min];
    }
    let raw_step = span / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        mag
    } else if norm < 3.5 {
        2.0 * mag
    } else if norm < 7.5 {
        5.0 * mag
    } else {
        10.0 * mag
    };
    let first = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= max + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn format_tick(t: f64) -> String {
    if t == 0.0 {
        return "0".to_owned();
    }
    let a = t.abs();
    if a >= 10.0 {
        format!("{t:.0}")
    } else if a >= 1.0 {
        format!("{t:.1}")
    } else {
        format!("{t:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> LinePlot {
        LinePlot::new("t", "x", "y")
            .with_series(PlotSeries {
                name: "a".into(),
                points: vec![(0.0, 0.0), (10.0, 5.0), (20.0, 3.0)],
            })
            .with_series(PlotSeries {
                name: "b".into(),
                points: vec![(0.0, 1.0), (20.0, 9.0)],
            })
    }

    #[test]
    fn renders_valid_skeleton() {
        let svg = demo().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.matches("<circle").count() >= 5);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn nice_ticks_are_round() {
        let ticks = nice_ticks(0.0, 100.0, 6);
        assert!(ticks.contains(&0.0));
        assert!(ticks.contains(&100.0) || ticks.contains(&80.0));
        for w in ticks.windows(2) {
            assert!((w[1] - w[0] - (ticks[1] - ticks[0])).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_plot_renders() {
        let svg = LinePlot::new("empty", "x", "y").render_svg();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn degenerate_single_point() {
        let svg = LinePlot::new("p", "x", "y")
            .with_series(PlotSeries {
                name: "one".into(),
                points: vec![(5.0, 5.0)],
            })
            .render_svg();
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn escapes_markup() {
        let svg = LinePlot::new("a<b&c", "x", "y").render_svg();
        assert!(svg.contains("a&lt;b&amp;c"));
    }
}
