//! Minimal fixed-width text table rendering for benchmark output.

/// A text table with a header row and left-aligned first column.
///
/// ```
/// use threelc_bench::Table;
/// let mut t = Table::new(&["Design", "Speedup"]);
/// t.row(&["3LC", "15.9"]);
/// let s = t.render();
/// assert!(s.contains("Design"));
/// assert!(s.contains("15.9"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string (trailing newline included).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                if c == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[c]));
                } else {
                    line.push_str(&format!("{cell:>width$}", width = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Name", "X"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert_eq!(lines[0].len(), lines[3].len());
        assert!(lines[3].starts_with("longer"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn wrong_arity_panics() {
        Table::new(&["A"]).row(&["1", "2"]);
    }
}
