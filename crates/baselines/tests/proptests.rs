//! Property-based tests over all baseline compression schemes.

use proptest::prelude::*;
use threelc_baselines::{build_compressor, SchemeKind};
use threelc_tensor::{Shape, Tensor};

fn any_scheme() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Float32),
        Just(SchemeKind::Fp16),
        Just(SchemeKind::Int8),
        Just(SchemeKind::StochasticTernary),
        Just(SchemeKind::MqeOneBit),
        (0.01f64..1.0).prop_map(|fraction| SchemeKind::Sparsify { fraction }),
        (1u32..5).prop_map(|period| SchemeKind::LocalSteps { period }),
        (1u32..32).prop_map(|levels| SchemeKind::Qsgd { levels }),
        (1.0f32..1.99).prop_map(SchemeKind::three_lc),
    ]
}

fn float_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..300)
}

proptest! {
    #[test]
    fn roundtrip_preserves_shape_and_finiteness(
        scheme in any_scheme(),
        v in float_vec(),
        seed in any::<u64>(),
    ) {
        let t = Tensor::from_slice(&v);
        let mut cx = build_compressor(&scheme, t.shape().clone(), seed);
        for _ in 0..2 {
            let wire = cx.compress(&t).expect("finite input compresses");
            let out = cx.decompress(&wire).expect("own payload decodes");
            prop_assert_eq!(out.shape(), t.shape());
            prop_assert!(out.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn decompress_arbitrary_bytes_never_panics(
        scheme in any_scheme(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        n in 1usize..64,
    ) {
        let cx = build_compressor(&scheme, Shape::new(&[n]), 0);
        let _ = cx.decompress(&payload);
    }

    #[test]
    fn truncations_of_valid_payloads_never_panic(
        scheme in any_scheme(),
        v in float_vec(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let t = Tensor::from_slice(&v);
        let mut cx = build_compressor(&scheme, t.shape().clone(), 1);
        let wire = cx.compress(&t).expect("compress");
        let cut = (wire.len() as f64 * cut_fraction) as usize;
        let _ = cx.decompress(&wire[..cut]);
    }

    #[test]
    fn restored_magnitudes_bounded_by_input_scale(
        v in float_vec(),
        seed in any::<u64>(),
    ) {
        // For every deterministic lossy scheme, the restored values must
        // not exceed ~2x the input's max magnitude (3LC's worst case is
        // s·max < 2·max; others preserve or shrink magnitudes).
        let t = Tensor::from_slice(&v);
        for scheme in [
            SchemeKind::Int8,
            SchemeKind::MqeOneBit,
            SchemeKind::Sparsify { fraction: 0.25 },
            SchemeKind::three_lc(1.0),
            SchemeKind::three_lc(1.9),
        ] {
            let mut cx = build_compressor(&scheme, t.shape().clone(), seed);
            let wire = cx.compress(&t).expect("compress");
            let out = cx.decompress(&wire).expect("decode");
            prop_assert!(
                out.max_abs() <= t.max_abs() * 2.0 + 1e-6,
                "{scheme}: out {} vs in {}", out.max_abs(), t.max_abs()
            );
        }
    }

    #[test]
    fn nan_inputs_rejected_everywhere(scheme in any_scheme(), n in 1usize..32) {
        let mut data = vec![0.5f32; n];
        data[0] = f32::NAN;
        let t = Tensor::from_slice(&data);
        let mut cx = build_compressor(&scheme, t.shape().clone(), 0);
        // LocalSteps accumulates without scanning on skip steps; every
        // scheme must either reject or produce a payload that decodes to
        // finite-or-rejected output — never panic.
        match cx.compress(&t) {
            Err(_) => {}
            Ok(wire) => {
                let _ = cx.decompress(&wire);
            }
        }
    }

    #[test]
    fn error_feedback_bounds_cumulative_drift(
        v in prop::collection::vec(-1.0f32..1.0, 8..128),
        seed in any::<u64>(),
    ) {
        // Schemes with residual buffers: after R identical steps the
        // cumulative transmitted sum must stay within a constant of the
        // cumulative input (drift does not grow linearly).
        let t = Tensor::from_slice(&v);
        for scheme in [SchemeKind::three_lc(1.0), SchemeKind::MqeOneBit] {
            let mut cx = build_compressor(&scheme, t.shape().clone(), seed);
            let mut sent = Tensor::zeros(t.shape().clone());
            let rounds = 12;
            for _ in 0..rounds {
                let wire = cx.compress(&t).expect("compress");
                sent.add_assign(&cx.decompress(&wire).expect("decode")).expect("shape");
            }
            let drift = t.scale(rounds as f32).sub(&sent).expect("shape").max_abs();
            let residual_bound = cx.residual().expect("has buffer").max_abs();
            prop_assert!(
                (drift - residual_bound).abs() < 1e-2 + residual_bound * 0.1
                    || drift <= residual_bound + 1e-2,
                "{scheme}: drift {drift} exceeds residual {residual_bound}"
            );
        }
    }
}
