//! QSGD-style multi-level stochastic quantization with Elias coding
//! (Alistarh et al., NIPS 2017 — the paper's §6 related work).
//!
//! Not part of the paper's Table 1, but included as an extension
//! comparator: it represents the "stochastic quantization + entropy
//! coding" family the paper positions 3LC against. Each value is
//! stochastically quantized onto `levels` uniform buckets of the tensor's
//! L2 norm, and the (sign, level) pairs are Elias-gamma coded.

use threelc::elias::{self, BitReader, BitWriter};
use threelc::{CompressError, Compressor, DecodeError};
use threelc_tensor::{Rng, Shape, Tensor};

/// Header: 4-byte `f32` L2 norm + 4-byte `u32` element count + 1-byte
/// levels.
const HEADER_LEN: usize = 9;

/// QSGD quantization: `Q(x_i) = ‖x‖₂ · sign(x_i) · ξ_i / levels` where
/// `ξ_i` is the stochastic level assignment, an unbiased estimator of
/// `|x_i|/‖x‖₂ · levels`.
#[derive(Debug, Clone)]
pub struct QsgdCompressor {
    shape: Shape,
    levels: u32,
    rng: Rng,
}

impl QsgdCompressor {
    /// Creates a context with the given number of quantization levels
    /// (QSGD's `s`; 4 is a common low-bit setting).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or above 255.
    pub fn new(shape: Shape, levels: u32, seed: u64) -> Self {
        assert!((1..=255).contains(&levels), "levels must be 1..=255");
        QsgdCompressor {
            shape,
            levels,
            rng: threelc_tensor::rng(seed),
        }
    }

    /// The configured level count.
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

impl Compressor for QsgdCompressor {
    fn name(&self) -> String {
        format!("QSGD ({} levels)", self.levels)
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        use rand::Rng as _;
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        if input.iter().any(|x| !x.is_finite()) {
            return Err(CompressError::NonFiniteInput);
        }
        let norm = input.l2_norm();
        let mut writer = BitWriter::new();
        if norm > 0.0 {
            for &x in input.iter() {
                let q = x.abs() / norm * self.levels as f32;
                let lower = q.floor();
                let level = if self.rng.gen::<f32>() < q - lower {
                    lower as u32 + 1
                } else {
                    lower as u32
                };
                let signed = if x < 0.0 {
                    -(level as i32)
                } else {
                    level as i32
                };
                elias::encode_u32(&mut writer, elias::zigzag(signed));
            }
        } else {
            for _ in 0..input.len() {
                elias::encode_u32(&mut writer, 0);
            }
        }
        let body = writer.into_bytes();
        let mut wire = Vec::with_capacity(HEADER_LEN + body.len());
        wire.extend_from_slice(&norm.to_le_bytes());
        wire.extend_from_slice(&(input.len() as u32).to_le_bytes());
        wire.push(self.levels as u8);
        wire.extend_from_slice(&body);
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let norm = crate::wire::read_f32(payload, 0)?;
        if !norm.is_finite() {
            return Err(DecodeError::NonFiniteScale);
        }
        let count = crate::wire::read_u32(payload, 4)? as usize;
        let n = self.shape.num_elements();
        if count != n {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: n,
            });
        }
        let levels = *payload.get(8).ok_or(DecodeError::TruncatedHeader {
            have: payload.len(),
            need: HEADER_LEN,
        })? as u32;
        if levels == 0 {
            return Err(DecodeError::Malformed {
                reason: "zero quantization levels".to_owned(),
            });
        }
        let mut reader = BitReader::new(&payload[HEADER_LEN..]);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let signed = elias::unzigzag(elias::decode_u32(&mut reader)?);
            data.push(norm * signed as f32 / levels as f32);
        }
        Ok(Tensor::from_vec(data, self.shape.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_tensor::Initializer;

    fn gradient(n: usize, seed: u64) -> Tensor {
        let mut rng = threelc_tensor::rng(seed);
        Initializer::Normal {
            mean: 0.0,
            std_dev: 0.1,
        }
        .init(&mut rng, [n])
    }

    #[test]
    fn roundtrip_shape_and_levels() {
        let t = gradient(100, 1);
        let mut cx = QsgdCompressor::new(t.shape().clone(), 4, 0);
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        assert_eq!(out.shape(), t.shape());
        // Every output is k/4 of the norm for integer k.
        let norm = t.l2_norm();
        for &v in out.iter() {
            let k = v / norm * 4.0;
            assert!((k - k.round()).abs() < 1e-4, "level {k}");
        }
    }

    #[test]
    fn unbiased_in_expectation() {
        let t = Tensor::from_slice(&[0.6, -0.3, 0.1, 0.0]);
        let mut cx = QsgdCompressor::new(t.shape().clone(), 4, 7);
        let rounds = 4000;
        let mut sum = Tensor::zeros(t.shape().clone());
        for _ in 0..rounds {
            let wire = cx.compress(&t).unwrap();
            sum.add_assign(&cx.decompress(&wire).unwrap()).unwrap();
        }
        let avg = sum.scale(1.0 / rounds as f32);
        assert!(avg.approx_eq(&t, 0.02), "avg {avg} vs {t}");
    }

    #[test]
    fn wire_smaller_than_floats_for_low_levels() {
        let t = gradient(10_000, 2);
        let mut cx = QsgdCompressor::new(t.shape().clone(), 4, 0);
        let wire = cx.compress(&t).unwrap();
        assert!(
            wire.len() * 4 < t.len() * 4,
            "QSGD ({}) should beat 8 bits/value",
            wire.len()
        );
    }

    #[test]
    fn more_levels_cost_more_bits() {
        let t = gradient(10_000, 3);
        let size = |levels| {
            let mut cx = QsgdCompressor::new(t.shape().clone(), levels, 0);
            cx.compress(&t).unwrap().len()
        };
        assert!(size(2) < size(16));
        assert!(size(16) < size(128));
    }

    #[test]
    fn zero_tensor() {
        let t = Tensor::zeros([64]);
        let mut cx = QsgdCompressor::new(t.shape().clone(), 4, 0);
        let wire = cx.compress(&t).unwrap();
        assert_eq!(cx.decompress(&wire).unwrap(), t);
    }

    #[test]
    fn malformed_payload_errors() {
        let cx = QsgdCompressor::new(Shape::new(&[8]), 4, 0);
        assert!(cx.decompress(&[1, 2, 3]).is_err());
        let mut bad = Vec::new();
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&8u32.to_le_bytes());
        bad.push(4);
        // No body: bit stream exhausted.
        assert!(cx.decompress(&bad).is_err());
        // Zero levels.
        let mut bad2 = Vec::new();
        bad2.extend_from_slice(&1.0f32.to_le_bytes());
        bad2.extend_from_slice(&8u32.to_le_bytes());
        bad2.push(0);
        bad2.extend_from_slice(&[0xff; 8]);
        assert!(matches!(
            cx.decompress(&bad2),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn zero_levels_panics() {
        QsgdCompressor::new(Shape::new(&[1]), 0, 0);
    }
}
