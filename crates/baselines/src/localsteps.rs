//! Infrequent transmission (the paper's `2 local steps` design).

use threelc::{CompressError, Compressor, DecodeError};
use threelc_tensor::{Shape, Tensor};

/// Payload tag for a skipped (empty) transmission.
const TAG_EMPTY: u8 = 0;
/// Payload tag for a full `f32` transmission.
const TAG_DATA: u8 = 1;

/// Transmits accumulated state changes every `period` steps and sends an
/// empty payload otherwise (the paper's `2 local steps` design with
/// `period = 2`).
///
/// Unsent updates accumulate locally in an error-accumulation buffer and
/// are folded into the next transmission, which "effectively doubles the
/// global batch size" (§5.1) — the accuracy cost the evaluation observes.
#[derive(Debug, Clone)]
pub struct LocalStepsCompressor {
    shape: Shape,
    period: u32,
    step: u32,
    buffer: Tensor,
}

impl LocalStepsCompressor {
    /// Creates a context that transmits every `period` steps.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(shape: Shape, period: u32) -> Self {
        assert!(period > 0, "period must be positive");
        let buffer = Tensor::zeros(shape.clone());
        LocalStepsCompressor {
            shape,
            period,
            step: 0,
            buffer,
        }
    }

    /// The configured transmission period.
    pub fn period(&self) -> u32 {
        self.period
    }
}

impl Compressor for LocalStepsCompressor {
    fn name(&self) -> String {
        format!("{} local steps", self.period)
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        self.buffer
            .add_assign(input)
            .expect("buffer shape is validated");
        self.step += 1;
        if !self.step.is_multiple_of(self.period) {
            return Ok(vec![TAG_EMPTY]);
        }
        let mut wire = Vec::with_capacity(1 + self.buffer.len() * 4);
        wire.push(TAG_DATA);
        for &x in self.buffer.iter() {
            wire.extend_from_slice(&x.to_le_bytes());
        }
        self.buffer.map_inplace(|_| 0.0);
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let n = self.shape.num_elements();
        match payload.first() {
            Some(&TAG_EMPTY) if payload.len() == 1 => Ok(Tensor::zeros(self.shape.clone())),
            Some(&TAG_DATA) if payload.len() == 1 + n * 4 => {
                let data = payload[1..]
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                Ok(Tensor::from_vec(data, self.shape.clone()))
            }
            Some(&tag) if tag > TAG_DATA => Err(DecodeError::UnknownFormat { flags: tag }),
            _ => Err(DecodeError::BodyLengthMismatch {
                decoded: payload.len().saturating_sub(1) / 4,
                expected: n,
            }),
        }
    }

    fn residual(&self) -> Option<&Tensor> {
        Some(&self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_empty_and_full() {
        let t = Tensor::from_slice(&[1.0, -2.0]);
        let mut cx = LocalStepsCompressor::new(t.shape().clone(), 2);
        let w1 = cx.compress(&t).unwrap();
        assert_eq!(w1, vec![TAG_EMPTY]);
        assert_eq!(cx.decompress(&w1).unwrap(), Tensor::zeros([2]));
        let w2 = cx.compress(&t).unwrap();
        assert_eq!(w2.len(), 1 + 8);
        // Second transmission carries both steps' updates.
        assert_eq!(cx.decompress(&w2).unwrap(), t.scale(2.0));
    }

    #[test]
    fn nothing_is_lost_across_a_cycle() {
        let t = Tensor::from_slice(&[0.3, 0.7, -0.1]);
        let mut cx = LocalStepsCompressor::new(t.shape().clone(), 3);
        let mut total = Tensor::zeros(t.shape().clone());
        for _ in 0..9 {
            let w = cx.compress(&t).unwrap();
            total.add_assign(&cx.decompress(&w).unwrap()).unwrap();
        }
        assert!(total.approx_eq(&t.scale(9.0), 1e-5));
    }

    #[test]
    fn traffic_roughly_halved_with_period_2() {
        let t = Tensor::zeros([1000]);
        let mut cx = LocalStepsCompressor::new(t.shape().clone(), 2);
        let mut bytes = 0usize;
        for _ in 0..10 {
            bytes += cx.compress(&t).unwrap().len();
        }
        let uncompressed = 10 * 1000 * 4;
        assert!(bytes < uncompressed * 51 / 100);
    }

    #[test]
    fn period_one_sends_everything() {
        let t = Tensor::from_slice(&[1.0]);
        let mut cx = LocalStepsCompressor::new(t.shape().clone(), 1);
        let w = cx.compress(&t).unwrap();
        assert_eq!(cx.decompress(&w).unwrap(), t);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        LocalStepsCompressor::new(Shape::new(&[1]), 0);
    }

    #[test]
    fn malformed_payload_errors() {
        let cx = LocalStepsCompressor::new(Shape::new(&[2]), 2);
        assert!(cx.decompress(&[]).is_err());
        assert!(cx.decompress(&[TAG_DATA, 0, 0]).is_err());
        assert!(matches!(
            cx.decompress(&[7]),
            Err(DecodeError::UnknownFormat { flags: 7 })
        ));
    }
}
