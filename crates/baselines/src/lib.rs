//! Baseline communication-reduction schemes compared against 3LC.
//!
//! Implements every design from the paper's §5.1 "Compared Designs",
//! behind the same [`Compressor`](threelc::Compressor) trait as 3LC itself:
//!
//! | Paper name | Type | Module |
//! |---|---|---|
//! | `32-bit float` | baseline, no compression | [`float32`] |
//! | `8-bit int` | TPU-style 8-bit quantization | [`int8`] |
//! | `Stoch 3-value + QE` | TernGrad-like stochastic ternary + quartic encoding | [`stochastic`] |
//! | `MQE 1-bit int` | 1-bit SGD with minimum squared quantization error + error feedback | [`onebit`] |
//! | `25% / 5% sparsification` | top-magnitude selection with sampled threshold + bitmap | [`sparsify`] |
//! | `2 local steps` | infrequent transmission with local accumulation | [`localsteps`] |
//!
//! Beyond the paper's Table 1, the crate also ships a QSGD-style
//! multi-level stochastic quantizer with Elias coding ([`qsgd`]) as an
//! extension comparator from the paper's related work (§6).
//!
//! The [`SchemeKind`] enum and [`build_compressor`] factory give the cluster
//! simulator and the benchmark harness a uniform way to instantiate any
//! scheme (including 3LC variants).

pub mod float32;
pub mod fp16;
pub mod int8;
pub mod localsteps;
pub mod onebit;
pub mod qsgd;
pub mod scheme;
pub mod sparsify;
pub mod stochastic;

pub use float32::Float32Compressor;
pub use fp16::Fp16Compressor;
pub use int8::Int8Compressor;
pub use localsteps::LocalStepsCompressor;
pub use onebit::MqeOneBitCompressor;
pub use qsgd::QsgdCompressor;
pub use scheme::{build_compressor, SchemeKind};
pub use sparsify::SparsifyCompressor;
pub use stochastic::StochasticTernaryCompressor;

/// Shared wire-format helpers for the baseline schemes.
pub(crate) mod wire {
    use threelc::DecodeError;

    /// Reads a little-endian `f32` at `offset`.
    pub fn read_f32(payload: &[u8], offset: usize) -> Result<f32, DecodeError> {
        let bytes: [u8; 4] = payload
            .get(offset..offset + 4)
            .ok_or(DecodeError::TruncatedHeader {
                have: payload.len(),
                need: offset + 4,
            })?
            .try_into()
            .expect("slice is 4 bytes");
        Ok(f32::from_le_bytes(bytes))
    }

    /// Reads a little-endian `u32` at `offset`.
    pub fn read_u32(payload: &[u8], offset: usize) -> Result<u32, DecodeError> {
        let bytes: [u8; 4] = payload
            .get(offset..offset + 4)
            .ok_or(DecodeError::TruncatedHeader {
                have: payload.len(),
                need: offset + 4,
            })?
            .try_into()
            .expect("slice is 4 bytes");
        Ok(u32::from_le_bytes(bytes))
    }
}
