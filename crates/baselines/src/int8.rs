//! 8-bit integer quantization (the paper's `8-bit int` design).

use crate::wire;
use threelc::{CompressError, Compressor, DecodeError};
use threelc_tensor::{Shape, Tensor};

/// Header: 4-byte `f32` scale + 4-byte `u32` element count.
const HEADER_LEN: usize = 8;

/// The paper's `8-bit int` scheme, approximating the Google TPU's internal
/// 8-bit quantization: values are scaled by `max(|T|)` and rounded to 255
/// distinct integers in `[-127, 127]` (−128 is left unused).
///
/// This scheme is stateless — with 255 levels the quantization error is
/// small enough that the paper uses it without error feedback.
#[derive(Debug, Clone)]
pub struct Int8Compressor {
    shape: Shape,
}

impl Int8Compressor {
    /// Creates a context for tensors of `shape`.
    pub fn new(shape: Shape) -> Self {
        Int8Compressor { shape }
    }
}

impl Compressor for Int8Compressor {
    fn name(&self) -> String {
        "8-bit int".to_owned()
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        let (max_abs, finite) = input.as_slice().iter().fold((0.0f32, true), |(m, ok), &x| {
            (m.max(x.abs()), ok && x.is_finite())
        });
        if !finite {
            return Err(CompressError::NonFiniteInput);
        }
        let scale = max_abs / 127.0;
        let mut wire = Vec::with_capacity(HEADER_LEN + input.len());
        wire.extend_from_slice(&scale.to_le_bytes());
        wire.extend_from_slice(&(input.len() as u32).to_le_bytes());
        if scale == 0.0 {
            wire.extend(std::iter::repeat_n(0u8, input.len()));
        } else {
            let inv = 1.0 / scale;
            wire.extend(input.iter().map(|&x| ((x * inv).round() as i8) as u8));
        }
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let scale = wire::read_f32(payload, 0)?;
        if !scale.is_finite() {
            return Err(DecodeError::NonFiniteScale);
        }
        let count = wire::read_u32(payload, 4)? as usize;
        let n = self.shape.num_elements();
        if count != n {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: n,
            });
        }
        let body = &payload[HEADER_LEN..];
        if body.len() != n {
            return Err(DecodeError::BodyLengthMismatch {
                decoded: body.len(),
                expected: n,
            });
        }
        let data = body.iter().map(|&b| (b as i8) as f32 * scale).collect();
        Ok(Tensor::from_vec(data, self.shape.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Tensor) -> Tensor {
        let mut cx = Int8Compressor::new(t.shape().clone());
        let wire = cx.compress(t).unwrap();
        cx.decompress(&wire).unwrap()
    }

    #[test]
    fn error_bounded_by_half_step() {
        let t = Tensor::from_slice(&[0.5, -0.31, 0.127, 0.001, -0.499]);
        let out = roundtrip(&t);
        let step = t.max_abs() / 127.0;
        assert!(t.sub(&out).unwrap().max_abs() <= step / 2.0 + 1e-7);
    }

    #[test]
    fn extremes_map_to_exact_values() {
        let t = Tensor::from_slice(&[1.0, -1.0, 0.0]);
        let out = roundtrip(&t);
        assert_eq!(out.as_slice(), &[1.0, -1.0, 0.0]);
    }

    #[test]
    fn wire_size_is_one_byte_per_value_plus_header() {
        let t = Tensor::zeros([1000]);
        let mut cx = Int8Compressor::new(t.shape().clone());
        assert_eq!(cx.compress(&t).unwrap().len(), 1008);
    }

    #[test]
    fn all_zero_tensor() {
        let t = Tensor::zeros([16]);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn never_uses_minus_128() {
        // [-127, 127] leaves -128 unused (255 distinct values).
        let t = Tensor::from_slice(&[-1.0, 1.0, -0.999999]);
        let mut cx = Int8Compressor::new(t.shape().clone());
        let wire = cx.compress(&t).unwrap();
        assert!(wire[HEADER_LEN..].iter().all(|&b| b as i8 != i8::MIN));
    }

    #[test]
    fn malformed_payloads_error() {
        let cx = Int8Compressor::new(Shape::new(&[4]));
        assert!(cx.decompress(&[1, 2]).is_err());
        let mut bad = Vec::new();
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&4u32.to_le_bytes());
        bad.extend_from_slice(&[0, 0, 0]); // one byte short
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let t = Tensor::from_slice(&[f32::NAN]);
        let mut cx = Int8Compressor::new(t.shape().clone());
        assert_eq!(cx.compress(&t).unwrap_err(), CompressError::NonFiniteInput);
    }
}
