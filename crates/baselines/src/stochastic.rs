//! Stochastic 3-value quantization with quartic encoding
//! (the paper's `Stoch 3-value + QE` design, TernGrad-like).

use rand::Rng as _;
use threelc::{quartic, CompressError, Compressor, DecodeError, TernaryTensor};
use threelc_tensor::{Rng, Shape, Tensor};

/// Header: 4-byte `f32` scale + 4-byte `u32` element count.
const HEADER_LEN: usize = 8;

/// Stochastic ternary quantization in the style of TernGrad (Wen et al.,
/// NIPS 2017), but using 3LC's quartic encoding for a 1.6-bit
/// representation instead of TernGrad's 2-bit encoding, and without
/// gradient clipping — exactly the configuration the paper evaluates.
///
/// Each value `x` becomes `sign(x)` with probability `|x| / M` (where
/// `M = max(|T|)`) and `0` otherwise, making the dequantized output an
/// unbiased estimator of the input. There is **no** error-accumulation
/// buffer: the paper found stochastic quantization *combined* with error
/// accumulation fails to converge (§3.1), so the two are alternatives.
#[derive(Debug, Clone)]
pub struct StochasticTernaryCompressor {
    shape: Shape,
    rng: Rng,
    clip_std_devs: Option<f32>,
}

impl StochasticTernaryCompressor {
    /// Creates a context for tensors of `shape` with a deterministic RNG
    /// seed (each worker/tensor context should get a distinct seed).
    ///
    /// This is the paper's evaluated configuration: *no* gradient
    /// clipping.
    pub fn new(shape: Shape, seed: u64) -> Self {
        StochasticTernaryCompressor {
            shape,
            rng: threelc_tensor::rng(seed),
            clip_std_devs: None,
        }
    }

    /// Creates a context with TernGrad's gradient clipping enabled:
    /// values are clamped to `±c·σ` before quantization (Wen et al. use
    /// `c = 2.5`), which shrinks `M` and reduces quantization variance at
    /// the cost of biasing large gradients. The paper evaluates the
    /// *unclipped* variant; this constructor exists for the comparison.
    ///
    /// # Panics
    ///
    /// Panics if `clip_std_devs` is not positive.
    pub fn with_clipping(shape: Shape, seed: u64, clip_std_devs: f32) -> Self {
        assert!(clip_std_devs > 0.0, "clip threshold must be positive");
        StochasticTernaryCompressor {
            shape,
            rng: threelc_tensor::rng(seed),
            clip_std_devs: Some(clip_std_devs),
        }
    }
}

impl Compressor for StochasticTernaryCompressor {
    fn name(&self) -> String {
        "Stoch 3-value + QE".to_owned()
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        let (max_abs, finite) = input.as_slice().iter().fold((0.0f32, true), |(m, ok), &x| {
            (m.max(x.abs()), ok && x.is_finite())
        });
        if !finite {
            return Err(CompressError::NonFiniteInput);
        }
        // Optional TernGrad-style clipping: cap magnitudes at c·σ.
        let clip = self
            .clip_std_devs
            .map(|c| c * input.variance().sqrt())
            .filter(|&c| c > 0.0);
        let scale = match clip {
            Some(c) => max_abs.min(c),
            None => max_abs,
        };
        let ternary: Vec<i8> = if scale == 0.0 {
            vec![0; input.len()]
        } else {
            input
                .iter()
                .map(|&x| {
                    let p = (x.abs() / scale).min(1.0);
                    if self.rng.gen::<f32>() < p {
                        if x > 0.0 {
                            1
                        } else {
                            -1
                        }
                    } else {
                        0
                    }
                })
                .collect()
        };
        let body = quartic::encode(&ternary);
        let mut wire = Vec::with_capacity(HEADER_LEN + body.len());
        wire.extend_from_slice(&scale.to_le_bytes());
        wire.extend_from_slice(&(input.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let scale = crate::wire::read_f32(payload, 0)?;
        if !scale.is_finite() {
            return Err(DecodeError::NonFiniteScale);
        }
        let count = crate::wire::read_u32(payload, 4)? as usize;
        let n = self.shape.num_elements();
        if count != n {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: n,
            });
        }
        let ternary = quartic::decode(&payload[HEADER_LEN..], n)?;
        Ok(TernaryTensor::from_parts(self.shape.clone(), ternary, scale).dequantize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_ternary_scaled() {
        let t = Tensor::from_slice(&[0.5, -0.25, 0.1, 0.0]);
        let mut cx = StochasticTernaryCompressor::new(t.shape().clone(), 1);
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        let m = t.max_abs();
        for &v in out.iter() {
            assert!(v == 0.0 || v == m || v == -m, "value {v}");
        }
    }

    #[test]
    fn unbiased_in_expectation() {
        // Averaging many independent quantizations approaches the input.
        let t = Tensor::from_slice(&[0.8, -0.4, 0.2, 0.0, -1.0]);
        let mut cx = StochasticTernaryCompressor::new(t.shape().clone(), 7);
        let rounds = 4000;
        let mut sum = Tensor::zeros(t.shape().clone());
        for _ in 0..rounds {
            let wire = cx.compress(&t).unwrap();
            sum.add_assign(&cx.decompress(&wire).unwrap()).unwrap();
        }
        let avg = sum.scale(1.0 / rounds as f32);
        assert!(
            avg.approx_eq(&t, 0.05),
            "average {avg} should approximate input {t}"
        );
    }

    #[test]
    fn max_magnitude_value_always_sent() {
        // p = |x|/M = 1 for the max-magnitude element.
        let t = Tensor::from_slice(&[1.0, 0.0]);
        let mut cx = StochasticTernaryCompressor::new(t.shape().clone(), 3);
        for _ in 0..50 {
            let wire = cx.compress(&t).unwrap();
            let out = cx.decompress(&wire).unwrap();
            assert_eq!(out.as_slice()[0], 1.0);
            assert_eq!(out.as_slice()[1], 0.0);
        }
    }

    #[test]
    fn wire_size_is_1_6_bits_per_value() {
        let t = Tensor::zeros([1000]);
        let mut cx = StochasticTernaryCompressor::new(t.shape().clone(), 0);
        assert_eq!(cx.compress(&t).unwrap().len(), HEADER_LEN + 200);
    }

    #[test]
    fn no_error_accumulation() {
        let cx = StochasticTernaryCompressor::new(Shape::new(&[4]), 0);
        assert!(cx.residual().is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = Tensor::from_slice(&[0.3, -0.6, 0.9, 0.1]);
        let mut a = StochasticTernaryCompressor::new(t.shape().clone(), 5);
        let mut b = StochasticTernaryCompressor::new(t.shape().clone(), 5);
        assert_eq!(a.compress(&t).unwrap(), b.compress(&t).unwrap());
    }

    #[test]
    fn clipping_caps_the_scale() {
        // One huge outlier dominates max|T|; with 2.5σ clipping the scale
        // drops well below it and small values transmit more often.
        let mut data = vec![0.1f32; 1000];
        data[0] = 100.0;
        let t = Tensor::from_vec(data, [1000]);
        let mut unclipped = StochasticTernaryCompressor::new(t.shape().clone(), 1);
        let mut clipped = StochasticTernaryCompressor::with_clipping(t.shape().clone(), 1, 2.5);
        let wu = unclipped.compress(&t).unwrap();
        let wc = clipped.compress(&t).unwrap();
        let scale_u = f32::from_le_bytes(wu[0..4].try_into().unwrap());
        let scale_c = f32::from_le_bytes(wc[0..4].try_into().unwrap());
        assert_eq!(scale_u, 100.0);
        assert!(scale_c < 10.0, "clipped scale {scale_c}");
        // More nonzeros survive with the smaller scale.
        let nz = |cx: &StochasticTernaryCompressor, wire: &[u8]| {
            cx.decompress(wire).unwrap().len() - cx.decompress(wire).unwrap().count_zeros()
        };
        // Expected nonzeros: ≈13 clipped vs ≈2 unclipped; allow slack for
        // the stochastic draw.
        assert!(
            nz(&clipped, &wc) > nz(&unclipped, &wu) * 3,
            "clipped {} vs unclipped {}",
            nz(&clipped, &wc),
            nz(&unclipped, &wu)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clip_panics() {
        StochasticTernaryCompressor::with_clipping(Shape::new(&[1]), 0, 0.0);
    }

    #[test]
    fn malformed_payload_errors() {
        let cx = StochasticTernaryCompressor::new(Shape::new(&[5]), 0);
        assert!(cx.decompress(&[0u8; 3]).is_err());
        let mut bad = Vec::new();
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&5u32.to_le_bytes());
        bad.push(255); // invalid quartic byte
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::InvalidQuarticByte { .. })
        ));
    }
}
