//! The uncompressed 32-bit float baseline.

use threelc::{CompressError, Compressor, DecodeError};
use threelc_tensor::{Shape, Tensor};

/// The paper's `32-bit float` baseline: state changes are transmitted as
/// raw little-endian `f32`s, 4 bytes per value, with no loss.
///
/// ```
/// use threelc::Compressor;
/// use threelc_baselines::Float32Compressor;
/// use threelc_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Tensor::from_slice(&[1.5, -2.25]);
/// let mut cx = Float32Compressor::new(t.shape().clone());
/// let wire = cx.compress(&t)?;
/// assert_eq!(wire.len(), 8);
/// assert_eq!(cx.decompress(&wire)?, t);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Float32Compressor {
    shape: Shape,
}

impl Float32Compressor {
    /// Creates a context for tensors of `shape`.
    pub fn new(shape: Shape) -> Self {
        Float32Compressor { shape }
    }
}

impl Compressor for Float32Compressor {
    fn name(&self) -> String {
        "32-bit float".to_owned()
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        let mut wire = Vec::with_capacity(input.len() * 4);
        for &x in input.iter() {
            wire.extend_from_slice(&x.to_le_bytes());
        }
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let n = self.shape.num_elements();
        if payload.len() != n * 4 {
            return Err(DecodeError::BodyLengthMismatch {
                decoded: payload.len() / 4,
                expected: n,
            });
        }
        let data = payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(Tensor::from_vec(data, self.shape.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_roundtrip() {
        let t = Tensor::from_vec(vec![0.0, 1.0, -1.5, f32::MIN_POSITIVE], [4]);
        let mut cx = Float32Compressor::new(t.shape().clone());
        let wire = cx.compress(&t).unwrap();
        assert_eq!(cx.decompress(&wire).unwrap(), t);
    }

    #[test]
    fn exact_wire_size() {
        let t = Tensor::zeros([100]);
        let mut cx = Float32Compressor::new(t.shape().clone());
        assert_eq!(cx.compress(&t).unwrap().len(), 400);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut cx = Float32Compressor::new(Shape::new(&[2]));
        assert!(cx.compress(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn truncated_payload_errors() {
        let cx = Float32Compressor::new(Shape::new(&[2]));
        assert!(matches!(
            cx.decompress(&[0u8; 7]),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
    }

    #[test]
    fn no_residual() {
        let cx = Float32Compressor::new(Shape::new(&[2]));
        assert!(cx.residual().is_none());
    }
}
