//! Uniform scheme selection for the simulator and benchmark harness.

use crate::{
    Float32Compressor, Fp16Compressor, Int8Compressor, LocalStepsCompressor, MqeOneBitCompressor,
    QsgdCompressor, SparsifyCompressor, StochasticTernaryCompressor,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use threelc::{Compressor, SparsityMultiplier, ThreeLcCompressor, ThreeLcOptions};
use threelc_tensor::Shape;

/// Every communication-reduction design evaluated in the paper (§5.1),
/// as a serializable configuration value.
///
/// ```
/// use threelc_baselines::{build_compressor, SchemeKind};
/// let cx = build_compressor(&SchemeKind::three_lc(1.75), (&[8usize]).into(), 0);
/// assert_eq!(cx.name(), "3LC (s=1.75)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Uncompressed 32-bit floats (the baseline).
    Float32,
    /// IEEE half-precision truncation (extension; ubiquitous in practice).
    Fp16,
    /// TPU-style 8-bit quantization.
    Int8,
    /// TernGrad-like stochastic ternary quantization with quartic encoding.
    StochasticTernary,
    /// 1-bit SGD with minimum squared quantization error and error feedback.
    MqeOneBit,
    /// Top-magnitude sparsification keeping `fraction` of values.
    Sparsify {
        /// Fraction of state changes to transmit (e.g. `0.25`, `0.05`).
        fraction: f64,
    },
    /// Transmit only every `period` steps, accumulating locally.
    LocalSteps {
        /// Steps between transmissions.
        period: u32,
    },
    /// QSGD-style multi-level stochastic quantization with Elias coding
    /// (related-work extension, not in the paper's Table 1).
    Qsgd {
        /// Number of quantization levels.
        levels: u32,
    },
    /// The full 3LC design.
    ThreeLc {
        /// Sparsity multiplier `s ∈ [1, 2)`.
        sparsity: f32,
        /// Apply zero-run encoding (paper default: true).
        zero_run_encoding: bool,
        /// Use the error-accumulation buffer (paper default: true).
        error_accumulation: bool,
    },
}

impl SchemeKind {
    /// The full 3LC design with sparsity multiplier `s` and paper defaults.
    pub fn three_lc(s: f32) -> Self {
        SchemeKind::ThreeLc {
            sparsity: s,
            zero_run_encoding: true,
            error_accumulation: true,
        }
    }

    /// All eleven rows of the paper's Table 1, in table order.
    pub fn table1_designs() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Float32,
            SchemeKind::Int8,
            SchemeKind::StochasticTernary,
            SchemeKind::MqeOneBit,
            SchemeKind::Sparsify { fraction: 0.25 },
            SchemeKind::Sparsify { fraction: 0.05 },
            SchemeKind::LocalSteps { period: 2 },
            SchemeKind::three_lc(1.0),
            SchemeKind::three_lc(1.5),
            SchemeKind::three_lc(1.75),
            SchemeKind::three_lc(1.9),
        ]
    }

    /// Human-readable name matching the paper's tables.
    pub fn label(&self) -> String {
        // Build a throwaway instance to reuse the canonical name logic.
        build_compressor(self, Shape::new(&[1]), 0).name()
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Instantiates a compression context of the given kind for one tensor.
///
/// `seed` only matters for stochastic schemes; give each worker/tensor pair
/// a distinct seed so their random choices are independent.
///
/// # Panics
///
/// Panics if the kind carries invalid parameters (e.g. a sparsity
/// multiplier outside `[1, 2)`); configurations come from code, not wire
/// input, so this is a programming error.
pub fn build_compressor(kind: &SchemeKind, shape: Shape, seed: u64) -> Box<dyn Compressor> {
    match *kind {
        SchemeKind::Float32 => Box::new(Float32Compressor::new(shape)),
        SchemeKind::Fp16 => Box::new(Fp16Compressor::new(shape)),
        SchemeKind::Int8 => Box::new(Int8Compressor::new(shape)),
        SchemeKind::StochasticTernary => Box::new(StochasticTernaryCompressor::new(shape, seed)),
        SchemeKind::MqeOneBit => Box::new(MqeOneBitCompressor::new(shape)),
        SchemeKind::Sparsify { fraction } => Box::new(SparsifyCompressor::new(shape, fraction)),
        SchemeKind::LocalSteps { period } => Box::new(LocalStepsCompressor::new(shape, period)),
        SchemeKind::Qsgd { levels } => Box::new(QsgdCompressor::new(shape, levels, seed)),
        SchemeKind::ThreeLc {
            sparsity,
            zero_run_encoding,
            error_accumulation,
        } => {
            let options = ThreeLcOptions {
                sparsity: SparsityMultiplier::new(sparsity)
                    .expect("sparsity multiplier must be in [1, 2)"),
                zero_run_encoding,
                error_accumulation,
            };
            Box::new(ThreeLcCompressor::with_options(shape, options))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_tensor::Tensor;

    #[test]
    fn table1_has_eleven_designs() {
        assert_eq!(SchemeKind::table1_designs().len(), 11);
    }

    #[test]
    fn labels_match_paper_names() {
        let labels: Vec<String> = SchemeKind::table1_designs()
            .iter()
            .map(|k| k.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "32-bit float",
                "8-bit int",
                "Stoch 3-value + QE",
                "MQE 1-bit int",
                "25% sparsification",
                "5% sparsification",
                "2 local steps",
                "3LC (s=1.00)",
                "3LC (s=1.50)",
                "3LC (s=1.75)",
                "3LC (s=1.90)",
            ]
        );
    }

    #[test]
    fn every_design_roundtrips_a_tensor() {
        let mut r = threelc_tensor::rng(0);
        let t = threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 0.1,
        }
        .init(&mut r, [64]);
        for kind in SchemeKind::table1_designs() {
            let mut cx = build_compressor(&kind, t.shape().clone(), 1);
            let wire = cx.compress(&t).unwrap();
            let out = cx.decompress(&wire).unwrap();
            assert_eq!(out.shape(), t.shape(), "{kind}");
        }
    }

    #[test]
    fn lossy_designs_compress_below_float32() {
        let mut r = threelc_tensor::rng(5);
        let t = threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 0.1,
        }
        .init(&mut r, [4096]);
        let baseline = 4096 * 4;
        for kind in SchemeKind::table1_designs().into_iter().skip(1) {
            let mut cx = build_compressor(&kind, t.shape().clone(), 1);
            // Two steps so LocalSteps hits both its empty and full payloads.
            let a = cx.compress(&t).unwrap().len();
            let b = cx.compress(&t).unwrap().len();
            assert!(a + b < 2 * baseline, "{kind}: {a}+{b} vs {baseline}");
        }
    }

    #[test]
    fn display_uses_label() {
        assert_eq!(SchemeKind::Float32.to_string(), "32-bit float");
    }

    #[test]
    fn serde_roundtrip() {
        let kind = SchemeKind::three_lc(1.5);
        let json = serde_json::to_string(&kind).unwrap();
        let back: SchemeKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
    }

    #[test]
    fn zero_tensor_all_designs() {
        let t = Tensor::zeros([50]);
        for kind in SchemeKind::table1_designs() {
            let mut cx = build_compressor(&kind, t.shape().clone(), 2);
            let wire = cx.compress(&t).unwrap();
            let out = cx.decompress(&wire).unwrap();
            assert_eq!(out, t, "{kind}");
        }
    }
}
