//! 1-bit quantization with minimum squared quantization error
//! (the paper's `MQE 1-bit int` design, after Seide et al.'s 1-bit SGD).

use threelc::{CompressError, Compressor, DecodeError};
use threelc_tensor::{Shape, Tensor};

/// Header: two 4-byte `f32` dequantization levels + 4-byte `u32` count.
const HEADER_LEN: usize = 12;

/// 1-bit stochastic gradient descent quantization (Seide et al.,
/// Interspeech 2014): every value is transmitted as one bit — `1` for
/// non-negative, `0` for negative — and each bit dequantizes to the *mean*
/// of the input values in its class, which minimizes the squared
/// quantization error for a fixed 2-level code. Quantization errors are
/// corrected through an error-feedback (accumulation) buffer.
///
/// The paper notes this design's unconventional per-class mean reduction is
/// costly to vectorize, which shows up as high computation overhead in the
/// 1 Gbps results (§5.3); the cluster simulator measures our implementation
/// the same way.
#[derive(Debug, Clone)]
pub struct MqeOneBitCompressor {
    shape: Shape,
    buffer: Tensor,
}

impl MqeOneBitCompressor {
    /// Creates a context for tensors of `shape`.
    pub fn new(shape: Shape) -> Self {
        let buffer = Tensor::zeros(shape.clone());
        MqeOneBitCompressor { shape, buffer }
    }
}

impl Compressor for MqeOneBitCompressor {
    fn name(&self) -> String {
        "MQE 1-bit int".to_owned()
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        if input.iter().any(|x| !x.is_finite()) {
            return Err(CompressError::NonFiniteInput);
        }
        self.buffer
            .add_assign(input)
            .expect("buffer shape is validated");

        // Two-level MQE: level of each class is the class mean.
        let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0u64, 0.0f64, 0u64);
        for &x in self.buffer.iter() {
            if x >= 0.0 {
                pos_sum += x as f64;
                pos_n += 1;
            } else {
                neg_sum += x as f64;
                neg_n += 1;
            }
        }
        let pos_level = if pos_n > 0 {
            (pos_sum / pos_n as f64) as f32
        } else {
            0.0
        };
        let neg_level = if neg_n > 0 {
            (neg_sum / neg_n as f64) as f32
        } else {
            0.0
        };

        let n = self.buffer.len();
        let mut wire = Vec::with_capacity(HEADER_LEN + n.div_ceil(8));
        wire.extend_from_slice(&pos_level.to_le_bytes());
        wire.extend_from_slice(&neg_level.to_le_bytes());
        wire.extend_from_slice(&(n as u32).to_le_bytes());
        let mut bits = vec![0u8; n.div_ceil(8)];
        for (i, &x) in self.buffer.as_slice().iter().enumerate() {
            if x >= 0.0 {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        wire.extend_from_slice(&bits);

        // Error feedback: subtract what was transmitted.
        for x in self.buffer.as_mut_slice() {
            *x -= if *x >= 0.0 { pos_level } else { neg_level };
        }
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let pos_level = crate::wire::read_f32(payload, 0)?;
        let neg_level = crate::wire::read_f32(payload, 4)?;
        if !pos_level.is_finite() || !neg_level.is_finite() {
            return Err(DecodeError::NonFiniteScale);
        }
        let count = crate::wire::read_u32(payload, 8)? as usize;
        let n = self.shape.num_elements();
        if count != n {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: n,
            });
        }
        let bits = &payload[HEADER_LEN..];
        if bits.len() != n.div_ceil(8) {
            return Err(DecodeError::BodyLengthMismatch {
                decoded: bits.len() * 8,
                expected: n,
            });
        }
        let data = (0..n)
            .map(|i| {
                if bits[i / 8] & (1 << (i % 8)) != 0 {
                    pos_level
                } else {
                    neg_level
                }
            })
            .collect();
        Ok(Tensor::from_vec(data, self.shape.clone()))
    }

    fn residual(&self) -> Option<&Tensor> {
        Some(&self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_output() {
        let t = Tensor::from_slice(&[0.4, 0.2, -0.1, -0.3]);
        let mut cx = MqeOneBitCompressor::new(t.shape().clone());
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        // Positive class mean 0.3; negative class mean −0.2.
        assert!(out.approx_eq(&Tensor::from_slice(&[0.3, 0.3, -0.2, -0.2]), 1e-6));
    }

    #[test]
    fn class_means_minimize_squared_error() {
        // For a 2-level code with fixed class assignment, the class mean is
        // the unique minimizer of squared error — perturbing either level
        // must not reduce it.
        let t = Tensor::from_slice(&[0.9, 0.1, 0.5, -0.4, -0.6]);
        let mut cx = MqeOneBitCompressor::new(t.shape().clone());
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        let base: f32 = t.sub(&out).unwrap().sum_squares();
        for delta in [-0.05f32, 0.05] {
            let perturbed = out.map(|x| if x > 0.0 { x + delta } else { x });
            let err = t.sub(&perturbed).unwrap().sum_squares();
            assert!(err >= base - 1e-9, "perturbed {err} < base {base}");
        }
    }

    #[test]
    fn error_feedback_residual_correct() {
        let t = Tensor::from_slice(&[0.4, 0.2, -0.1, -0.3]);
        let mut cx = MqeOneBitCompressor::new(t.shape().clone());
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        let expected = t.sub(&out).unwrap();
        assert!(cx.residual().unwrap().approx_eq(&expected, 1e-6));
    }

    #[test]
    fn cumulative_transmission_tracks_input() {
        let t = Tensor::from_slice(&[0.05, 0.5, -0.2, -0.02]);
        let mut cx = MqeOneBitCompressor::new(t.shape().clone());
        let mut sent = Tensor::zeros(t.shape().clone());
        for _ in 0..50 {
            let wire = cx.compress(&t).unwrap();
            sent.add_assign(&cx.decompress(&wire).unwrap()).unwrap();
        }
        let total = t.scale(50.0);
        // Error feedback keeps the cumulative residual bounded (not growing
        // with the number of steps).
        let resid = total.sub(&sent).unwrap().max_abs();
        assert!(resid < 1.5, "cumulative residual {resid} too large");
    }

    #[test]
    fn wire_size_about_one_bit_per_value() {
        let t = Tensor::zeros([800]);
        let mut cx = MqeOneBitCompressor::new(t.shape().clone());
        assert_eq!(cx.compress(&t).unwrap().len(), HEADER_LEN + 100);
    }

    #[test]
    fn all_positive_input() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let mut cx = MqeOneBitCompressor::new(t.shape().clone());
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        assert!(out.approx_eq(&Tensor::full([3], 2.0), 1e-6));
    }

    #[test]
    fn malformed_payload_errors() {
        let cx = MqeOneBitCompressor::new(Shape::new(&[8]));
        assert!(cx.decompress(&[0u8; 5]).is_err());
        let mut bad = Vec::new();
        bad.extend_from_slice(&0.1f32.to_le_bytes());
        bad.extend_from_slice(&(-0.1f32).to_le_bytes());
        bad.extend_from_slice(&8u32.to_le_bytes());
        // missing bitmap byte
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
    }
}
