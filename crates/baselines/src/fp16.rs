//! IEEE 754 binary16 (half-precision) truncation — the most widely
//! deployed communication-reduction baseline in practice (extension; not
//! in the paper's Table 1).
//!
//! Conversion is implemented from scratch (round-to-nearest-even with
//! correct subnormal, overflow, and NaN handling) since no half-precision
//! crate is in the dependency set.

use threelc::{CompressError, Compressor, DecodeError};
use threelc_tensor::{Shape, Tensor};

/// Converts an `f32` to its nearest binary16 bit pattern
/// (round-to-nearest-even; overflows map to ±inf).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet-NaN payload bit if any mantissa bit set.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, re-biased for f16 (bias 15).
    let e16 = exp - 127 + 15;
    if e16 >= 0x1f {
        return sign | 0x7c00; // overflow → inf
    }
    if e16 <= 0 {
        // Subnormal (or underflow to zero): shift the implicit-1 mantissa.
        if e16 < -10 {
            return sign; // underflows to ±0
        }
        let full = mant | 0x80_0000; // implicit leading 1
        let shift = (14 - e16) as u32; // bits dropped from the 24-bit mantissa
        let half_val = (full >> shift) as u16;
        // Round to nearest even on the dropped bits.
        let rem = full & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = match rem.cmp(&halfway) {
            std::cmp::Ordering::Greater => half_val + 1,
            std::cmp::Ordering::Equal => half_val + (half_val & 1),
            std::cmp::Ordering::Less => half_val,
        };
        return sign | rounded;
    }
    // Normal: keep top 10 mantissa bits, round to nearest even.
    let half_mant = (mant >> 13) as u16;
    let rem = mant & 0x1fff;
    let mut out = sign | ((e16 as u16) << 10) | half_mant;
    let halfway = 0x1000;
    match rem.cmp(&halfway) {
        std::cmp::Ordering::Greater => out += 1, // may carry into exponent: correct (rounds up magnitude)
        std::cmp::Ordering::Equal => out += out & 1,
        std::cmp::Ordering::Less => {}
    }
    out
}

/// Converts a binary16 bit pattern back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign, // ±0
        (0, m) => {
            // Subnormal: value = m × 2⁻²⁴. With the top set bit of m at
            // position p, the f32 exponent is (p − 24) + 127 and the
            // remaining bits become the fraction.
            let shift = m.leading_zeros() - 21; // 10 − p
                                                // Left-align so the leading 1 sits at bit 10, then mask it
                                                // off: the remaining 10 bits are the normalized fraction.
            let frac = (m << shift) & 0x3ff;
            let e = 127 - 14 - shift; // = 103 + p
            sign | (e << 23) | (frac << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,             // ±inf
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13), // NaN
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Half-precision truncation as a [`Compressor`]: 2 bytes per value,
/// stateless, ~3 decimal digits of precision.
#[derive(Debug, Clone)]
pub struct Fp16Compressor {
    shape: Shape,
}

impl Fp16Compressor {
    /// Creates a context for tensors of `shape`.
    pub fn new(shape: Shape) -> Self {
        Fp16Compressor { shape }
    }
}

impl Compressor for Fp16Compressor {
    fn name(&self) -> String {
        "16-bit float".to_owned()
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        if input.iter().any(|x| !x.is_finite()) {
            return Err(CompressError::NonFiniteInput);
        }
        let mut wire = Vec::with_capacity(input.len() * 2);
        for &x in input.iter() {
            wire.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
        }
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let n = self.shape.num_elements();
        if payload.len() != n * 2 {
            return Err(DecodeError::BodyLengthMismatch {
                decoded: payload.len() / 2,
                expected: n,
            });
        }
        let data = payload
            .chunks_exact(2)
            .map(|c| f16_bits_to_f32(u16::from_le_bytes(c.try_into().expect("2 bytes"))))
            .collect();
        Ok(Tensor::from_vec(data, self.shape.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_representable_values() {
        for x in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            let h = f32_to_f16_bits(x);
            assert_eq!(f16_bits_to_f32(h), x, "x = {x}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00, "overflow → inf");
        // Smallest f16 subnormal is 2⁻²⁴.
        assert_eq!(f32_to_f16_bits(2f32.powi(-24)), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), 2f32.powi(-24));
    }

    #[test]
    fn nan_preserved() {
        let h = f32_to_f16_bits(f32::NAN);
        assert!(f16_bits_to_f32(h).is_nan());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and the next f16
        // (1 + 2⁻¹⁰); ties go to even (1.0, mantissa 0).
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(f32_to_f16_bits(halfway), 0x3c00);
        // Just above halfway rounds up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-20);
        assert_eq!(f32_to_f16_bits(above), 0x3c01);
    }

    #[test]
    fn relative_error_bounded() {
        let mut rng = threelc_tensor::rng(1);
        let t = threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 0.1,
        }
        .init(&mut rng, [10_000]);
        let min_normal = 2f32.powi(-14);
        let subnormal_step = 2f32.powi(-24);
        for &x in t.iter() {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            if x.abs() >= min_normal {
                let rel = (back - x).abs() / x.abs();
                assert!(rel < 1e-3, "x = {x}, back = {back}");
            } else {
                // Subnormal range: absolute error within half a step.
                assert!(
                    (back - x).abs() <= subnormal_step / 2.0 + f32::EPSILON,
                    "x = {x}, back = {back}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_monotone_on_sorted_input() {
        // f16 conversion preserves ordering.
        let xs: Vec<f32> = (-100..100).map(|i| i as f32 * 0.013).collect();
        let hs: Vec<f32> = xs
            .iter()
            .map(|&x| f16_bits_to_f32(f32_to_f16_bits(x)))
            .collect();
        for w in hs.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn compressor_roundtrip_and_size() {
        let t = Tensor::from_slice(&[0.1, -0.25, 3.5, 0.0]);
        let mut cx = Fp16Compressor::new(t.shape().clone());
        let wire = cx.compress(&t).unwrap();
        assert_eq!(wire.len(), 8);
        let out = cx.decompress(&wire).unwrap();
        assert!(out.approx_eq(&t, 2e-3));
        assert_eq!(out.as_slice()[1], -0.25, "exactly representable");
    }

    #[test]
    fn malformed_payload_errors() {
        let cx = Fp16Compressor::new(Shape::new(&[4]));
        assert!(matches!(
            cx.decompress(&[0u8; 7]),
            Err(DecodeError::BodyLengthMismatch { .. })
        ));
    }
}
