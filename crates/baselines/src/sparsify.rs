//! Magnitude sparsification (the paper's `25%` / `5% sparsification`).

use threelc::{CompressError, Compressor, DecodeError};
use threelc_tensor::{Shape, Tensor};

/// Header: 4-byte `u32` element count + 4-byte `u32` selected count.
const HEADER_LEN: usize = 8;

/// Number of values sampled when estimating the magnitude threshold
/// (the paper avoids exhaustive sorting by sorting sampled values, after
/// Aji & Heafield's gradient dropping).
const THRESHOLD_SAMPLES: usize = 1024;

/// Top-magnitude sparsification with error accumulation, reproducing the
/// common sparsification designs the paper compares against (§5.1):
///
/// - selects approximately `fraction` of the largest-magnitude state
///   changes per tensor (absolute magnitude, not relative — the paper
///   found this more accurate for its workload);
/// - estimates the selection threshold from a sorted sample instead of a
///   full sort;
/// - accumulates unsent changes in a buffer for later transmission;
/// - transmits a bitmap (1 bit per state change) plus the selected values
///   as 32-bit floats.
#[derive(Debug, Clone)]
pub struct SparsifyCompressor {
    shape: Shape,
    fraction: f64,
    buffer: Tensor,
}

impl SparsifyCompressor {
    /// Creates a context selecting `fraction` (e.g. `0.25` or `0.05`) of
    /// state changes per tensor.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn new(shape: Shape, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let buffer = Tensor::zeros(shape.clone());
        SparsifyCompressor {
            shape,
            fraction,
            buffer,
        }
    }

    /// The configured selection fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Estimates the magnitude threshold above which roughly
    /// `fraction` of the buffer's values lie, by sorting a strided sample.
    fn estimate_threshold(&self) -> f32 {
        let data = self.buffer.as_slice();
        let n = data.len();
        if n == 0 {
            return 0.0;
        }
        let stride = (n / THRESHOLD_SAMPLES).max(1);
        let mut sample: Vec<f32> = data.iter().step_by(stride).map(|x| x.abs()).collect();
        sample.sort_by(|a, b| a.partial_cmp(b).expect("magnitudes are finite"));
        let keep = ((sample.len() as f64) * self.fraction).ceil() as usize;
        let idx = sample.len().saturating_sub(keep.max(1));
        sample[idx]
    }
}

impl Compressor for SparsifyCompressor {
    fn name(&self) -> String {
        format!("{}% sparsification", (self.fraction * 100.0).round() as u32)
    }

    fn compress(&mut self, input: &Tensor) -> Result<Vec<u8>, CompressError> {
        if input.shape() != &self.shape {
            return Err(CompressError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: input.shape().dims().to_vec(),
            });
        }
        if input.iter().any(|x| !x.is_finite()) {
            return Err(CompressError::NonFiniteInput);
        }
        self.buffer
            .add_assign(input)
            .expect("buffer shape is validated");

        let threshold = self.estimate_threshold();
        let n = self.buffer.len();
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        let mut selected = Vec::new();
        for (i, x) in self.buffer.as_mut_slice().iter_mut().enumerate() {
            // Send anything at/above the threshold; a zero threshold still
            // skips exact zeros (nothing to send).
            if x.abs() >= threshold && *x != 0.0 {
                bitmap[i / 8] |= 1 << (i % 8);
                selected.push(*x);
                *x = 0.0; // transmitted in full; residual is zero
            }
        }

        let mut wire = Vec::with_capacity(HEADER_LEN + bitmap.len() + selected.len() * 4);
        wire.extend_from_slice(&(n as u32).to_le_bytes());
        wire.extend_from_slice(&(selected.len() as u32).to_le_bytes());
        wire.extend_from_slice(&bitmap);
        for v in &selected {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        Ok(wire)
    }

    fn decompress(&self, payload: &[u8]) -> Result<Tensor, DecodeError> {
        let count = crate::wire::read_u32(payload, 0)? as usize;
        let k = crate::wire::read_u32(payload, 4)? as usize;
        let n = self.shape.num_elements();
        if count != n {
            return Err(DecodeError::ElementCountMismatch {
                payload: count,
                expected: n,
            });
        }
        let bitmap_len = n.div_ceil(8);
        let expected_len = HEADER_LEN + bitmap_len + k * 4;
        if payload.len() != expected_len {
            return Err(DecodeError::Malformed {
                reason: format!(
                    "sparsified payload is {} bytes, expected {expected_len}",
                    payload.len()
                ),
            });
        }
        let bitmap = &payload[HEADER_LEN..HEADER_LEN + bitmap_len];
        let popcount: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        if popcount != k {
            return Err(DecodeError::Malformed {
                reason: format!("bitmap selects {popcount} values, header says {k}"),
            });
        }
        let values = &payload[HEADER_LEN + bitmap_len..];
        let mut data = vec![0.0f32; n];
        let mut vi = 0;
        for (i, slot) in data.iter_mut().enumerate() {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                let bytes: [u8; 4] = values[vi * 4..vi * 4 + 4]
                    .try_into()
                    .expect("length validated above");
                *slot = f32::from_le_bytes(bytes);
                vi += 1;
            }
        }
        Ok(Tensor::from_vec(data, self.shape.clone()))
    }

    fn residual(&self) -> Option<&Tensor> {
        Some(&self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian(n: usize, seed: u64) -> Tensor {
        let mut r = threelc_tensor::rng(seed);
        threelc_tensor::Initializer::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .init(&mut r, [n])
    }

    #[test]
    fn selects_roughly_the_requested_fraction() {
        let t = gaussian(8192, 1);
        for frac in [0.25, 0.05] {
            let mut cx = SparsifyCompressor::new(t.shape().clone(), frac);
            let wire = cx.compress(&t).unwrap();
            let out = cx.decompress(&wire).unwrap();
            let sent = out.len() - out.count_zeros();
            let got = sent as f64 / t.len() as f64;
            assert!(
                (got - frac).abs() < frac * 0.5 + 0.02,
                "frac {frac}: selected {got}"
            );
        }
    }

    #[test]
    fn selected_values_are_largest() {
        let t = Tensor::from_slice(&[0.9, 0.01, -0.8, 0.02, 0.03, -0.04, 0.05, 0.7]);
        let mut cx = SparsifyCompressor::new(t.shape().clone(), 0.25);
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        // ceil(0.25 · 8) = 2 values survive the threshold: the two largest
        // magnitudes, transmitted exactly.
        assert_eq!(out.as_slice()[0], 0.9);
        assert_eq!(out.as_slice()[2], -0.8);
        assert_eq!(out.len() - out.count_zeros(), 2);
        // 0.7 is deferred to the accumulation buffer and tops the next
        // step's selection once it accumulates to 1.4.
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        assert_eq!(out.as_slice()[7], 1.4);
    }

    #[test]
    fn transmitted_values_are_exact_and_residual_holds_rest() {
        let t = gaussian(512, 2);
        let mut cx = SparsifyCompressor::new(t.shape().clone(), 0.05);
        let wire = cx.compress(&t).unwrap();
        let out = cx.decompress(&wire).unwrap();
        let resid = cx.residual().unwrap();
        // transmitted + residual == input (sparsification is exact on the
        // values it sends and defers the rest).
        let sum = out.add(resid).unwrap();
        assert!(sum.approx_eq(&t, 1e-6));
    }

    #[test]
    fn unsent_values_accumulate_and_eventually_send() {
        let n = 64;
        let mut data = vec![0.01f32; n];
        data[0] = 1.0;
        let t = Tensor::from_vec(data, [n]);
        let mut cx = SparsifyCompressor::new(t.shape().clone(), 0.02);
        let mut total = Tensor::zeros(t.shape().clone());
        for _ in 0..300 {
            let wire = cx.compress(&t).unwrap();
            total.add_assign(&cx.decompress(&wire).unwrap()).unwrap();
        }
        assert!(
            total.as_slice()[1] > 0.0,
            "accumulated small values must eventually transmit"
        );
    }

    #[test]
    fn wire_overhead_is_one_bit_per_value() {
        let t = Tensor::zeros([8000]);
        let mut cx = SparsifyCompressor::new(t.shape().clone(), 0.25);
        // Zero tensor: nothing selected, only header + bitmap.
        let wire = cx.compress(&t).unwrap();
        assert_eq!(wire.len(), HEADER_LEN + 1000);
    }

    #[test]
    fn malformed_payload_errors() {
        let cx = SparsifyCompressor::new(Shape::new(&[16]), 0.25);
        assert!(cx.decompress(&[0u8; 3]).is_err());
        // Bitmap popcount disagreeing with header.
        let mut bad = Vec::new();
        bad.extend_from_slice(&16u32.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0b1, 0b0]); // only 1 bit set
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        bad.extend_from_slice(&2.0f32.to_le_bytes());
        assert!(matches!(
            cx.decompress(&bad),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_panics() {
        SparsifyCompressor::new(Shape::new(&[4]), 0.0);
    }

    #[test]
    fn name_formats_percentage() {
        assert_eq!(
            SparsifyCompressor::new(Shape::new(&[4]), 0.25).name(),
            "25% sparsification"
        );
        assert_eq!(
            SparsifyCompressor::new(Shape::new(&[4]), 0.05).name(),
            "5% sparsification"
        );
    }
}
