//! Tensor shapes (dimension lists).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape (list of dimensions) of a [`Tensor`](crate::Tensor).
///
/// A scalar has the empty shape `[]` and one element. Shapes are immutable
/// once constructed.
///
/// ```
/// use threelc_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.num_elements(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates the scalar shape `[]`.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut offset = 0;
        for (i, (&idx, &dim)) in index.iter().zip(&self.dims).enumerate() {
            assert!(
                idx < dim,
                "index {idx} out of bounds for dim {i} (size {dim})"
            );
            offset = offset * dim + idx;
        }
        offset
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl<const N: usize> From<&[usize; N]> for Shape {
    fn from(dims: &[usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl From<&Shape> for Shape {
    fn from(shape: &Shape) -> Self {
        shape.clone()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.flat_index(&[]), 0);
    }

    #[test]
    fn num_elements_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::new(&[5]).num_elements(), 5);
        assert_eq!(Shape::new(&[7, 0, 3]).num_elements(), 0);
    }

    #[test]
    fn flat_index_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.flat_index(&[0, 0]), 0);
        assert_eq!(s.flat_index(&[0, 2]), 2);
        assert_eq!(s.flat_index(&[1, 0]), 3);
        assert_eq!(s.flat_index(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_out_of_bounds_panics() {
        Shape::new(&[2, 3]).flat_index(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn flat_index_wrong_rank_panics() {
        Shape::new(&[2, 3]).flat_index(&[1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let a: Shape = [2usize, 3].into();
        let b: Shape = vec![2usize, 3].into();
        let c: Shape = (&[2usize, 3][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
