//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A reshape was requested to a shape with a different element count.
    ElementCountMismatch {
        /// Elements in the existing tensor.
        have: usize,
        /// Elements implied by the requested shape.
        want: usize,
    },
    /// An operation required a specific rank (e.g. matmul requires rank 2).
    RankMismatch {
        /// Expected tensor rank.
        expected: usize,
        /// Actual tensor rank.
        actual: usize,
    },
    /// Inner dimensions of a matrix multiply do not agree.
    InnerDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::ElementCountMismatch { have, want } => {
                write!(f, "element count mismatch: have {have}, want {want}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::InnerDimMismatch {
                left_cols,
                right_rows,
            } => {
                write!(
                    f,
                    "matmul inner dimension mismatch: left has {left_cols} columns, \
                     right has {right_rows} rows"
                )
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::ShapeMismatch {
                left: vec![2, 2],
                right: vec![3],
            },
            TensorError::ElementCountMismatch { have: 4, want: 6 },
            TensorError::RankMismatch {
                expected: 2,
                actual: 1,
            },
            TensorError::InnerDimMismatch {
                left_cols: 3,
                right_rows: 4,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
