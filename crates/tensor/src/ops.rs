//! Elementwise, reduction, and linear-algebra operations on [`Tensor`].

use crate::{Tensor, TensorError};

impl Tensor {
    /// Elementwise sum of two tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Applies `f` elementwise over two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(Tensor::from_vec(
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape().clone(),
        ))
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self -= other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements; 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum absolute value of any element; 0 for an empty tensor.
    ///
    /// This is the `max(|T_in|)` reduction from the paper's Equation 1.
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Minimum element; `+inf` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().fold(f32::INFINITY, |m, &x| m.min(x))
    }

    /// Maximum element; `-inf` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// Sum of squared elements.
    pub fn sum_squares(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum()
    }

    /// Euclidean (L2) norm.
    pub fn l2_norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Population variance of elements; 0 for an empty tensor.
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.as_slice()
            .iter()
            .map(|&x| {
                let d = x - mean;
                d * d
            })
            .sum::<f32>()
            / self.len() as f32
    }

    /// Dot product of two same-shaped tensors (flattened).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, TensorError> {
        self.check_same_shape(other)?;
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Matrix multiply of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2
    /// and [`TensorError::InnerDimMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        if other.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.shape().rank(),
            });
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (other.shape().dim(0), other.shape().dim(1));
        if k != k2 {
            return Err(TensorError::InnerDimMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        // Loop order (i, l, j) keeps the inner loop contiguous over both the
        // output row and the right-hand matrix row, which the compiler
        // auto-vectorizes.
        for i in 0..m {
            for l in 0..k {
                let a_il = a[i * k + l];
                if a_il == 0.0 {
                    continue;
                }
                let b_row = &b[l * n..(l + 1) * n];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_il * bv;
                }
            }
        }
        Ok(Tensor::from_vec(out, [m, n]))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape().rank(),
            });
        }
        let (m, n) = (self.shape().dim(0), self.shape().dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Ok(Tensor::from_vec(out, [n, m]))
    }

    /// Number of elements exactly equal to zero.
    pub fn count_zeros(&self) -> usize {
        self.as_slice().iter().filter(|&&x| x == 0.0).count()
    }

    /// Fraction of elements exactly equal to zero; 0 for an empty tensor.
    pub fn sparsity(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.count_zeros() as f64 / self.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[10.0, 40.0, 90.0]);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = t(&[1.0, 2.0]);
        let b = Tensor::zeros([3]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
        let mut a2 = a.clone();
        assert!(a2.add_assign(&b).is_err());
    }

    #[test]
    fn inplace_ops() {
        let mut a = t(&[1.0, 2.0]);
        a.add_assign(&t(&[1.0, 1.0])).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        a.sub_assign(&t(&[1.0, 1.0])).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        a.axpy(2.0, &t(&[1.0, 10.0])).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 22.0]);
        a.scale_inplace(0.5);
        assert_eq!(a.as_slice(), &[1.5, 11.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -4.0, 3.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.min(), -4.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.sum_squares(), 26.0);
        assert!((a.l2_norm() - 26.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let a = Tensor::full([100], 3.5);
        assert_eq!(a.variance(), 0.0);
    }

    #[test]
    fn variance_known_value() {
        let a = t(&[1.0, 3.0]);
        assert_eq!(a.variance(), 1.0);
    }

    #[test]
    fn empty_reductions() {
        let e = Tensor::zeros([0]);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max_abs(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.sparsity(), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_errors() {
        let a = Tensor::zeros([2, 3]);
        let bad_rank = Tensor::zeros([3]);
        assert!(matches!(
            a.matmul(&bad_rank),
            Err(TensorError::RankMismatch { .. })
        ));
        let bad_inner = Tensor::zeros([4, 2]);
        assert!(matches!(
            a.matmul(&bad_inner),
            Err(TensorError::InnerDimMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt, a);
        let at = a.transpose().unwrap();
        assert_eq!(at.at(&[2, 1]), a.at(&[1, 2]));
    }

    #[test]
    fn sparsity_counts() {
        let a = t(&[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(a.count_zeros(), 3);
        assert_eq!(a.sparsity(), 0.75);
    }
}
