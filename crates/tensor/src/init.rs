//! Random tensor initializers.

use crate::{Rng, Shape, Tensor};
use rand::Rng as _;

/// Random initialization schemes for tensors.
///
/// These cover the standard initializers deep-learning frameworks provide;
/// the training substrate uses [`Initializer::HeNormal`] for ReLU layers and
/// [`Initializer::XavierUniform`] for linear output layers.
///
/// ```
/// use threelc_tensor::{Initializer, rng};
/// let mut r = rng(1);
/// let w = Initializer::HeNormal { fan_in: 64 }.init(&mut r, &[64, 32]);
/// assert_eq!(w.len(), 64 * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Every element is `value`.
    Constant {
        /// The fill value.
        value: f32,
    },
    /// Uniform over `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f32,
        /// Exclusive upper bound.
        high: f32,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Distribution mean.
        mean: f32,
        /// Distribution standard deviation.
        std_dev: f32,
    },
    /// He (Kaiming) normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU nets.
    HeNormal {
        /// Number of input units feeding each output unit.
        fan_in: usize,
    },
    /// Xavier (Glorot) uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Number of input units.
        fan_in: usize,
        /// Number of output units.
        fan_out: usize,
    },
}

impl Initializer {
    /// Creates a tensor of the given shape drawn from this initializer.
    pub fn init(&self, rng: &mut Rng, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.num_elements();
        let data: Vec<f32> = match *self {
            Initializer::Constant { value } => vec![value; n],
            Initializer::Uniform { low, high } => {
                (0..n).map(|_| rng.gen_range(low..high)).collect()
            }
            Initializer::Normal { mean, std_dev } => (0..n)
                .map(|_| mean + std_dev * sample_standard_normal(rng))
                .collect(),
            Initializer::HeNormal { fan_in } => {
                let std_dev = (2.0 / fan_in.max(1) as f32).sqrt();
                (0..n)
                    .map(|_| std_dev * sample_standard_normal(rng))
                    .collect()
            }
            Initializer::XavierUniform { fan_in, fan_out } => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..a)).collect()
            }
        };
        Tensor::from_vec(data, shape)
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
///
/// We avoid `rand_distr` to keep the dependency set to the pre-approved
/// crates; Box–Muller is exact and adequate for initialization and synthetic
/// data generation.
pub fn sample_standard_normal(rng: &mut Rng) -> f32 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        return (r * theta.cos()) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn constant_fills() {
        let mut r = rng(0);
        let t = Initializer::Constant { value: 4.0 }.init(&mut r, [5]);
        assert!(t.iter().all(|&x| x == 4.0));
    }

    #[test]
    fn uniform_in_range() {
        let mut r = rng(1);
        let t = Initializer::Uniform {
            low: -0.5,
            high: 0.5,
        }
        .init(&mut r, [1000]);
        assert!(t.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(2);
        let t = Initializer::Normal {
            mean: 1.0,
            std_dev: 2.0,
        }
        .init(&mut r, [20000]);
        assert!((t.mean() - 1.0).abs() < 0.1, "mean {}", t.mean());
        assert!(
            (t.variance().sqrt() - 2.0).abs() < 0.1,
            "std {}",
            t.variance().sqrt()
        );
    }

    #[test]
    fn he_normal_scale() {
        let mut r = rng(3);
        let t = Initializer::HeNormal { fan_in: 50 }.init(&mut r, [20000]);
        let expect = (2.0f32 / 50.0).sqrt();
        assert!((t.variance().sqrt() - expect).abs() < 0.02);
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut r = rng(4);
        let a = (6.0f32 / 30.0).sqrt();
        let t = Initializer::XavierUniform {
            fan_in: 10,
            fan_out: 20,
        }
        .init(&mut r, [5000]);
        assert!(t.iter().all(|&x| x.abs() < a));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Initializer::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .init(&mut rng(9), [64]);
        let b = Initializer::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .init(&mut rng(9), [64]);
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_mean_zero() {
        let mut r = rng(5);
        let n = 20000;
        let mean: f32 = (0..n).map(|_| sample_standard_normal(&mut r)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
