//! Summary statistics over tensors.
//!
//! The evaluation harness uses these to characterize gradient and
//! model-delta distributions over training (the paper's Figure 9 discussion
//! relates compression ratio to state-change variance).

use crate::Tensor;
use serde::{Deserialize, Serialize};

/// Summary statistics of a tensor's value distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorStats {
    /// Number of elements.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std_dev: f32,
    /// Minimum element.
    pub min: f32,
    /// Maximum element.
    pub max: f32,
    /// Maximum absolute value.
    pub max_abs: f32,
    /// Fraction of exactly-zero elements.
    pub zero_fraction: f64,
}

impl TensorStats {
    /// Computes statistics over a tensor.
    ///
    /// ```
    /// use threelc_tensor::{Tensor, TensorStats};
    /// let s = TensorStats::of(&Tensor::from_slice(&[0.0, 2.0, -2.0, 0.0]));
    /// assert_eq!(s.mean, 0.0);
    /// assert_eq!(s.zero_fraction, 0.5);
    /// ```
    pub fn of(tensor: &Tensor) -> Self {
        TensorStats {
            count: tensor.len(),
            mean: tensor.mean(),
            std_dev: tensor.variance().sqrt(),
            min: tensor.min(),
            max: tensor.max(),
            max_abs: tensor.max_abs(),
            zero_fraction: tensor.sparsity(),
        }
    }
}

/// A fixed-width histogram over a symmetric value range `[-limit, limit]`.
///
/// Used by the compression explorer example to visualize how 3-value
/// quantization buckets state changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    limit: f32,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets spanning `[-limit, limit]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `limit <= 0`.
    pub fn new(limit: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(limit > 0.0, "histogram limit must be positive");
        Histogram {
            limit,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds every element of `tensor` to the histogram.
    pub fn add_tensor(&mut self, tensor: &Tensor) {
        for &x in tensor.iter() {
            self.add(x);
        }
    }

    /// Adds a single value.
    pub fn add(&mut self, x: f32) {
        if x < -self.limit {
            self.underflow += 1;
            return;
        }
        if x > self.limit {
            self.overflow += 1;
            return;
        }
        let bins = self.counts.len();
        let t = (x + self.limit) / (2.0 * self.limit);
        let idx = ((t * bins as f32) as usize).min(bins - 1);
        self.counts[idx] += 1;
    }

    /// Bucket counts, lowest value range first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values below `-limit`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values above `limit`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of values added, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_tensor() {
        let t = Tensor::from_slice(&[-1.0, 0.0, 1.0, 2.0]);
        let s = TensorStats::of(&t);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.max_abs, 2.0);
        assert_eq!(s.zero_fraction, 0.25);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(1.0, 4);
        // Bins: [-1,-0.5), [-0.5,0), [0,0.5), [0.5,1]
        h.add(-0.9);
        h.add(-0.1);
        h.add(0.1);
        h.add(0.9);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::new(1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        h.add(1.0); // exactly at limit lands in the top bin
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_add_tensor() {
        let mut h = Histogram::new(2.0, 4);
        h.add_tensor(&Tensor::from_slice(&[-1.5, -0.5, 0.5, 1.5]));
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(1.0, 0);
    }
}
