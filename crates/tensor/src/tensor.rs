//! The dense row-major `f32` tensor type.

use crate::{Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Tensors are the unit of compression in 3LC: one tensor holds the
/// gradients or model deltas of one neural-network layer. The data is always
/// materialized as a contiguous `Vec<f32>` — the paper's 3-value
/// quantization deliberately works on *dense* arrays (§3.1) because dense
/// operations vectorize well.
///
/// ```
/// use threelc_tensor::Tensor;
/// let t = Tensor::zeros(&[3, 4]);
/// assert_eq!(t.len(), 12);
/// assert_eq!(t.shape().dims(), &[3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from a flat data vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.num_elements()
        );
        Tensor { shape, data }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a tensor whose element at flat offset `i` is `f(i)`.
    pub fn from_fn(shape: impl Into<Shape>, f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: (0..n).map(f).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying data as a slice, in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying data as a mutable slice, in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.shape.flat_index(index);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the new shape has a
    /// different element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                have: self.data.len(),
                want: shape.num_elements(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Checks that two tensors have identical shapes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn check_same_shape(&self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Whether all pairwise element differences are within `tol`.
    ///
    /// Returns `false` when shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, x) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros([2, 2]).iter().all(|&x| x == 0.0));
        assert!(Tensor::ones([4]).iter().all(|&x| x == 1.0));
        assert!(Tensor::full([3], 2.5).iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.at(&[0, 1]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        let mut t = t;
        t.set(&[1, 1], 9.0);
        assert_eq!(t.at(&[1, 1]), 9.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(vec![1.0, 2.0], [3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    fn reshape_wrong_count_errors() {
        let t = Tensor::zeros([2, 3]);
        let err = t.reshape([4]).unwrap_err();
        assert_eq!(err, TensorError::ElementCountMismatch { have: 6, want: 4 });
    }

    #[test]
    fn map_and_map_inplace() {
        let t = Tensor::from_slice(&[1.0, -2.0]);
        let m = t.map(|x| x.abs());
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
        let mut t = t;
        t.map_inplace(|x| x * 10.0);
        assert_eq!(t.as_slice(), &[10.0, -20.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.0005, 2.0]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-4));
        let c = Tensor::zeros([3]);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros([20]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.starts_with("Tensor[20]"));
    }

    #[test]
    fn from_fn_indexing() {
        let t = Tensor::from_fn([4], |i| i as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_tensor() {
        let t = Tensor::zeros([0]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
