//! Dense `f32` tensor substrate for the 3LC reproduction.
//!
//! The paper treats each layer's parameters, gradients, and model deltas as
//! a tensor (a multidimensional array of 32-bit floats). This crate provides
//! that substrate: a row-major dense [`Tensor`] with the elementwise,
//! reduction, and linear-algebra operations the compression schemes and the
//! neural-network training framework need, plus deterministic random
//! initialization and summary statistics.
//!
//! # Example
//!
//! ```
//! use threelc_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[2, 2]);
//! let b = a.map(|x| x * 2.0);
//! assert_eq!(b.as_slice(), &[2.0, -4.0, 6.0, 0.0]);
//! assert_eq!(b.max_abs(), 6.0);
//! ```

mod error;
pub mod init;
mod ops;
mod shape;
mod stats;
mod tensor;

pub use error::TensorError;
pub use init::Initializer;
pub use shape::Shape;
pub use stats::{Histogram, TensorStats};
pub use tensor::Tensor;

/// Deterministic RNG used across the workspace for reproducible experiments.
pub type Rng = rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a seed.
///
/// All experiments in the benchmark harness derive their randomness from
/// seeds so that table and figure regeneration is reproducible run-to-run.
///
/// ```
/// use rand::Rng as _;
/// let mut a = threelc_tensor::rng(7);
/// let mut b = threelc_tensor::rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
