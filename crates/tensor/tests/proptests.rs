//! Property-based tests for tensor algebra invariants.

use proptest::prelude::*;
use threelc_tensor::Tensor;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e6f32..1e6f32, 1..max_len)
}

proptest! {
    #[test]
    fn add_commutes(v in finite_vec(64)) {
        let a = Tensor::from_slice(&v);
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 0.0));
    }

    #[test]
    fn sub_is_add_of_negation(v in finite_vec(64)) {
        let a = Tensor::from_slice(&v);
        let b = a.map(|x| x * 0.25 + 3.0);
        let sub = a.sub(&b).unwrap();
        let neg_add = a.add(&b.scale(-1.0)).unwrap();
        prop_assert!(sub.approx_eq(&neg_add, 1e-3));
    }

    #[test]
    fn scale_distributes_over_add(v in finite_vec(64), s in -10.0f32..10.0) {
        let a = Tensor::from_slice(&v);
        let b = a.map(|x| x.sin());
        let lhs = a.add(&b).unwrap().scale(s);
        let rhs = a.scale(s).add(&b.scale(s)).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-1 + lhs.max_abs() * 1e-5));
    }

    #[test]
    fn max_abs_bounds_all_elements(v in finite_vec(128)) {
        let a = Tensor::from_slice(&v);
        let m = a.max_abs();
        prop_assert!(a.iter().all(|&x| x.abs() <= m));
        // max_abs is attained by some element.
        prop_assert!(a.iter().any(|&x| x.abs() == m));
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(v in finite_vec(64), c in -100.0f32..100.0) {
        let a = Tensor::from_slice(&v);
        prop_assert!(a.variance() >= 0.0);
        let shifted = a.map(|x| x + c);
        let scale = a.variance().max(1.0);
        prop_assert!((a.variance() - shifted.variance()).abs() <= scale * 0.05 + 1.0);
    }

    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let mut r = threelc_tensor::rng(seed);
        let t = threelc_tensor::Initializer::Normal { mean: 0.0, std_dev: 1.0 }
            .init(&mut r, [rows, cols]);
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(tt, t);
    }

    #[test]
    fn matmul_identity_property(n in 1usize..8, seed in any::<u64>()) {
        let mut r = threelc_tensor::rng(seed);
        let a = threelc_tensor::Initializer::Uniform { low: -1.0, high: 1.0 }
            .init(&mut r, [n, n]);
        let eye = Tensor::from_fn([n, n], |i| if i / n == i % n { 1.0 } else { 0.0 });
        let prod = a.matmul(&eye).unwrap();
        prop_assert!(prod.approx_eq(&a, 1e-6));
    }

    #[test]
    fn reshape_preserves_elements(v in finite_vec(60)) {
        let a = Tensor::from_slice(&v);
        let n = a.len();
        // Find any factorization n = p * q.
        let p = (1..=n).find(|p| n.is_multiple_of(*p) && *p > 1).unwrap_or(1);
        let r = a.reshape([p, n / p]).unwrap();
        prop_assert_eq!(r.as_slice(), a.as_slice());
    }

    #[test]
    fn dot_cauchy_schwarz(v in finite_vec(32)) {
        let a = Tensor::from_slice(&v);
        let b = a.map(|x| (x * 0.01).cos());
        let d = a.dot(&b).unwrap().abs() as f64;
        let bound = a.l2_norm() as f64 * b.l2_norm() as f64;
        prop_assert!(d <= bound * (1.0 + 1e-3) + 1e-3);
    }
}
