//! End-to-end causal-attribution test against the real `threelc` binary:
//! a traced loopback serve/worker run with an injected 250 ms delay on
//! worker 1, then `threelc analyze` must blame worker 1's network phase
//! — the same ground-truth gate ci.sh runs, exercised hermetically here.

use std::process::Command;

fn threelc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_threelc"));
    // Trace every role; the analyzer needs all three span buffers.
    cmd.env("THREELC_TRACE", "1");
    cmd
}

fn ephemeral_addr() -> String {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
    probe.local_addr().expect("addr").to_string()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("threelc-analyze-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

/// Blocks until the server answers a metrics scrape. Workers started
/// before the server binds retry with a ~500 ms backoff, and that wait
/// lands in their step-0 network span — real, but it would drown the
/// 250 ms signal this test injects.
fn wait_until_serving(addr: &str) {
    for _ in 0..250 {
        let probe = Command::new(env!("CARGO_BIN_EXE_threelc"))
            .args(["metrics", addr])
            .output()
            .expect("run metrics probe");
        if probe.status.success() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    panic!("server at {addr} never started serving");
}

#[test]
fn injected_delay_is_blamed_on_the_right_worker_and_phase() {
    let addr = ephemeral_addr();
    let report = tmp("delayed-report.json");

    let mut server = threelc()
        .args([
            "serve",
            "--addr",
            &addr,
            "--workers",
            "2",
            "--steps",
            "5",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--json",
            report.to_str().unwrap(),
        ])
        .spawn()
        .expect("spawn serve");
    wait_until_serving(&addr);
    // Worker 1 sleeps 250 ms before its step-2 push — from the server's
    // vantage point, a slow wire.
    let mut w0 = threelc()
        .args(["worker", "--addr", &addr, "--id", "0"])
        .spawn()
        .expect("spawn worker 0");
    let mut w1 = threelc()
        .args([
            "worker",
            "--addr",
            &addr,
            "--id",
            "1",
            "--inject-fault",
            "delay@2:250",
        ])
        .spawn()
        .expect("spawn worker 1");
    assert!(w0.wait().expect("worker 0").success());
    assert!(w1.wait().expect("worker 1").success());
    assert!(server.wait().expect("server").success());

    // The ground-truth gate: the injected delay must surface as worker1's
    // network phase topping the blame ledger AND being flagged.
    let blame = threelc()
        .args([
            "analyze",
            report.to_str().unwrap(),
            "--expect-blame",
            "worker1:network",
        ])
        .output()
        .expect("run analyze");
    let stdout = String::from_utf8_lossy(&blame.stdout);
    let stderr = String::from_utf8_lossy(&blame.stderr);
    assert!(
        blame.status.success(),
        "blame gate failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("blame check passed"), "got: {stdout}");
    assert!(
        stdout.contains("bottleneck [worker1/network]"),
        "got: {stdout}"
    );

    // The inverse gate: a run with a flagged bottleneck must fail --check.
    let check = threelc()
        .args(["analyze", report.to_str().unwrap(), "--check"])
        .output()
        .expect("run analyze --check");
    assert!(
        !check.status.success(),
        "--check must fail on a flagged bottleneck"
    );

    // Machine-readable path: attribution conserved, delay visible in the
    // totals, and at least ~200 ms landed on worker1/network.
    let json = threelc()
        .args(["analyze", report.to_str().unwrap(), "--json"])
        .output()
        .expect("run analyze --json");
    assert!(json.status.success());
    let analysis: threelc_obs::RunAnalysis =
        serde_json::from_str(&String::from_utf8_lossy(&json.stdout)).expect("parse analysis JSON");
    assert_eq!(analysis.steps.len(), 5);
    assert!(
        analysis.conservation_error < 0.05,
        "residual {}",
        analysis.conservation_error
    );
    let top = analysis.top().expect("top bucket");
    assert_eq!(
        (top.node.as_str(), top.phase.as_str()),
        ("worker1", "network")
    );
    assert!(
        top.seconds > 0.2,
        "expected ≥200 ms of blame, got {}",
        top.seconds
    );

    // The report embeds the analysis and the final registry snapshot, so
    // `metrics --prom` exposes the blame gauges offline.
    let prom = threelc()
        .args(["metrics", "--from", report.to_str().unwrap(), "--prom"])
        .output()
        .expect("run metrics --prom");
    assert!(prom.status.success());
    let prom = String::from_utf8_lossy(&prom.stdout);
    assert!(
        prom.contains("# TYPE critical_worker1_network_seconds gauge"),
        "got: {prom}"
    );
    assert!(prom.contains("critical_conservation_error"), "got: {prom}");
}

#[test]
fn clean_run_attribution_is_conserved() {
    let addr = ephemeral_addr();
    let report = tmp("clean-report.json");

    let mut server = threelc()
        .args([
            "serve",
            "--addr",
            &addr,
            "--workers",
            "2",
            "--steps",
            "4",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--json",
            report.to_str().unwrap(),
        ])
        .spawn()
        .expect("spawn serve");
    wait_until_serving(&addr);
    let workers: Vec<_> = (0..2)
        .map(|id| {
            threelc()
                .args(["worker", "--addr", &addr, "--id", &id.to_string()])
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    for mut w in workers {
        assert!(w.wait().expect("worker").success());
    }
    assert!(server.wait().expect("server").success());

    // Every step's buckets must sum to its measured wall time. The
    // bottleneck flag is deliberately not asserted here: a loaded host
    // can make a debug-build loopback step genuinely lopsided, and that
    // verdict would be correct — conservation is the invariant.
    let json = threelc()
        .args(["analyze", report.to_str().unwrap(), "--json"])
        .output()
        .expect("run analyze --json");
    assert!(json.status.success());
    let analysis: threelc_obs::RunAnalysis =
        serde_json::from_str(&String::from_utf8_lossy(&json.stdout)).expect("parse analysis JSON");
    assert_eq!(analysis.steps.len(), 4);
    assert!(
        analysis.conservation_error < 0.05,
        "residual {}",
        analysis.conservation_error
    );
    for st in &analysis.steps {
        let sum: f64 = st.buckets.iter().map(|b| b.seconds).sum();
        assert!(
            (sum - st.wall_seconds).abs() <= 0.05 * st.wall_seconds.max(1e-9),
            "step {}: buckets sum {sum} vs wall {}",
            st.step,
            st.wall_seconds
        );
    }
}
