//! End-to-end post-mortem forensics: a loopback run killed mid-flight
//! must leave behind (a) a `.flight.json` dump with the per-worker series
//! of every completed step plus the triggering anomaly, and (b) a
//! `metrics.snapshot` event in the structured log even though the run
//! aborted.
//!
//! `kill@N` calls `std::process::exit`, so this test drives the real
//! `threelc` binary rather than in-process threads.

use std::process::{Command, Stdio};
use std::time::Duration;

/// Exit code of a `kill@N`-faulted worker ([`threelc_net`]'s contract).
const KILL_EXIT_CODE: i32 = 43;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("threelc-flight-abort-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

/// An ephemeral loopback address that was just free.
fn free_addr() -> String {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
    probe.local_addr().expect("addr").to_string()
}

#[test]
fn aborted_run_leaves_a_flight_dump_and_a_metrics_snapshot() {
    let addr = free_addr();
    let json = tmp("report.json");
    let flight = tmp("report.flight.json");
    let log = tmp("log.jsonl");
    let _ = std::fs::remove_file(&flight);
    let _ = std::fs::remove_file(&log);

    let bin = env!("CARGO_BIN_EXE_threelc");
    let mut server = Command::new(bin)
        .args([
            "serve",
            "--addr",
            &addr,
            "--workers",
            "1",
            "--steps",
            "6",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--max-rejoins",
            "0",
            "--rejoin-timeout",
            "5",
            "--json",
            json.to_str().unwrap(),
            "--log-json",
            log.to_str().unwrap(),
        ])
        .env("THREELC_TRACE", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");

    // The worker dies between push and pull of step 2; with fail-stop
    // (--max-rejoins 0) the server must then abort.
    let mut worker_status = None;
    for attempt in 0..50 {
        let status = Command::new(bin)
            .args([
                "worker",
                "--addr",
                &addr,
                "--id",
                "0",
                "--inject-fault",
                "kill@2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run worker");
        if status.code() == Some(KILL_EXIT_CODE) {
            worker_status = Some(status);
            break;
        }
        // Connection refused before the server binds; retry.
        assert!(attempt < 49, "worker never reached the server: {status}");
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(
        worker_status.expect("worker ran").code(),
        Some(KILL_EXIT_CODE),
        "kill@2 must exit the worker process with the kill code"
    );

    let server_status = server.wait().expect("server exit");
    assert!(
        !server_status.success(),
        "a fail-stop server must exit nonzero after losing its worker"
    );

    // The flight dump: derived from --json automatically, abort trigger,
    // the kill recorded as an anomaly, and both completed steps' series.
    let text = std::fs::read_to_string(&flight).expect("flight dump exists");
    let dump = threelc_obs::FlightDump::from_json(&text).expect("dump parses");
    assert_eq!(dump.trigger, "abort", "detail: {}", dump.detail);
    // The kill fires between push and pull of step 2, so at least steps 0
    // and 1 folded into the store (step 2 itself may or may not have,
    // depending on whether its push landed before the socket died).
    assert!(
        (2..=3).contains(&dump.steps_recorded),
        "steps 0 and 1 completed before the kill; got {}",
        dump.steps_recorded
    );
    assert!(
        !dump.anomalies.is_empty(),
        "the disconnect must be recorded as an anomaly"
    );
    assert!(
        dump.anomalies
            .iter()
            .any(|a| a.kind == "fault-disconnect" && a.node == "worker0"),
        "got: {:?}",
        dump.anomalies
    );
    assert_eq!(dump.series.workers.len(), 1);
    for name in threelc_obs::timeseries::WORKER_SERIES {
        let s = dump.series.workers[0]
            .series(name)
            .unwrap_or_else(|| panic!("series {name} missing"));
        assert_eq!(
            s.count(),
            dump.steps_recorded,
            "series {name} must hold every completed step"
        );
    }

    // `threelc trace` reads the dump, and --check fails on its anomalies.
    let rendered = Command::new(bin)
        .args(["trace", flight.to_str().unwrap()])
        .output()
        .expect("trace render");
    assert!(rendered.status.success());
    let out = String::from_utf8_lossy(&rendered.stdout);
    assert!(out.contains("trigger=abort"), "got: {out}");
    assert!(out.contains("fault-disconnect"), "got: {out}");
    let checked = Command::new(bin)
        .args(["trace", flight.to_str().unwrap(), "--check"])
        .output()
        .expect("trace check");
    assert!(
        !checked.status.success(),
        "--check must fail on a dump with anomalies"
    );

    // A traced abort snapshots the server's own span buffer into the dump
    // (workers' spans are only drained at graceful shutdown), so the
    // critical-path analyzer works on the post-mortem too.
    assert!(
        dump.spans.iter().any(|n| !n.spans.is_empty()),
        "a THREELC_TRACE=1 abort must carry the server's spans"
    );
    let analyzed = Command::new(bin)
        .args(["analyze", flight.to_str().unwrap()])
        .output()
        .expect("analyze dump");
    assert!(
        analyzed.status.success(),
        "analyze on the dump: {}",
        String::from_utf8_lossy(&analyzed.stderr)
    );
    let out = String::from_utf8_lossy(&analyzed.stdout);
    assert!(out.contains("critical path over"), "got: {out}");

    // Satellite regression: the aborted run still left its end-of-run
    // metrics.snapshot event in the structured log, so `metrics --from`
    // renders the dead run.
    let log_text = std::fs::read_to_string(&log).expect("structured log exists");
    assert!(
        log_text.contains("\"event\":\"metrics.snapshot\""),
        "aborted runs must still snapshot metrics; log: {log_text}"
    );
    let from = Command::new(bin)
        .args(["metrics", "--from", log.to_str().unwrap()])
        .output()
        .expect("metrics --from");
    assert!(from.status.success(), "metrics --from on the aborted log");

    // No partial report: the run never finished, so --json wrote nothing.
    assert!(!json.exists(), "aborted runs must not write a final report");
}
