//! Command implementations for the `threelc` binary.
//!
//! Kept separate from `main.rs` so every command is unit-testable without
//! spawning processes.

use std::error::Error;
use std::fmt::Write as _;
use std::path::Path;
use threelc::{Compressor, SparsityMultiplier, TernaryTensor, ThreeLcCompressor, ThreeLcOptions};
use threelc_tensor::{Shape, Tensor, TensorStats};

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage:
  threelc compress   <input.f32> <output.3lc> [--sparsity S] [--no-zre]
                     [--threads N]
  threelc decompress <input.3lc> <output.f32> [--threads N]
  threelc inspect    <input.3lc>
  threelc stats      <input.f32> [--sparsity S]
  threelc codec
  threelc serve      --addr A [--workers N] [--steps N] [--seed N]
                     [--scheme float32|fp16|int8|3lc] [--sparsity S]
                     [--policy SPEC] [--width N] [--blocks N] [--batch N]
                     [--eval-every N] [--threads N] [--json report.json]
                     [--rejoin-timeout SECS] [--max-rejoins N]
                     [--flight dump.flight.json] [--aggregate MODE]
  threelc worker     --addr A --id N [--threads N] [--max-rejoins N]
                     [--inject-fault SPEC] [--rejoin] [--policy SPEC]
  threelc simulate   [--workers N] [--steps N] [--seed N] [--scheme ...]
                     [--sparsity S] [--policy SPEC] [--width N]
                     [--blocks N] [--batch N] [--eval-every N]
                     [--threads N] [--aggregate MODE]
  threelc metrics    <addr> [--json|--prom] [--watch SECS]
  threelc metrics    --from <log.jsonl|report.json> [--json|--prom]
  threelc top        <addr> [--interval SECS] [--once] [--json]
  threelc trace      <report.json|flight.json|addr> [--chrome out.json]
                     [--check] [--steps N]
  threelc analyze    <report.json|flight.json|addr> [--json] [--steps N]
                     [--check] [--expect-blame NODE:PHASE]

--threads N uses up to N codec/aggregation threads (0 = one per core);
output is bit-identical at every setting.

codec prints the encode implementation tier in use (scalar, swar, or
simd — auto-selected at startup, overridable via THREELC_CODEC_IMPL)
and which tiers this host supports. Every tier is bit-identical; the
choice only affects throughput. compress and inspect report the active
tier inline.

serve tolerates worker disconnects: a worker may reconnect and resume
mid-run (up to --max-rejoins times, waiting --rejoin-timeout seconds per
barrier; --max-rejoins 0 restores fail-stop). worker --inject-fault arms
a deterministic fault (disconnect@N, drop-after-push@N, kill@N, crc@N[:S],
delay@N:MS; also via THREELC_FAULT); --rejoin resumes a previous worker's
run after a kill. simulate runs the same experiment in-process and prints
the same `final model crc32` line a fault-free or recovered serve prints.

--aggregate picks the server's aggregation path: `exact` (default)
accumulates worker-order float sums straight from decoded symbols and is
bit-identical to `f32` (the decode-then-sum seed path); `compressed`
groups workers by scale and sums symbols in integer lanes — fastest, and
deterministic (serve == simulate == rejoin replay) but not bit-identical
to the other two.

--policy selects the compression-policy engine deciding the sparsity
multiplier per tensor per step: `static` (default), `fixed:S`,
`schedule:from=A,to=B,over=N[,layer=K]` (linear warmup ramp),
`feedback:ratio=R|residual=E,start=S[,gain=G][,band=B][,hold=H]`
(bounded controller chasing a target), or `@file.json`. The server
evaluates the policy and broadcasts each decision with the pull batch,
so serve/worker runs stay bit-identical to `simulate --policy`.

trace renders the cross-node step timeline of a THREELC_TRACE=1 run from
a `serve --json` report (or a live server's own spans), exports Chrome/
Perfetto JSON with --chrome, and with --check exits nonzero on watchdog
anomalies (stragglers, ratio drift, residual blowups). Point it at a
`.flight.json` post-mortem dump to render the flight recorder instead.

analyze reconstructs each BSP step's critical path from a traced run
(THREELC_TRACE=1) and attributes the measured step time to {node x phase}
buckets — time peers spend blocked at the barrier is charged to the
straggler that caused it, so the buckets sum to the wall clock exactly.
It prints first-order what-if projections (\"encode 2x faster => step
-N%\") and flags workers whose network blame dominates. --expect-blame
NODE:PHASE exits nonzero unless that bucket tops the ledger and is
flagged (the CI ground-truth gate for injected delays); --check exits
nonzero when attribution fails to conserve or any bottleneck is flagged.
metrics --prom renders any snapshot source in OpenMetrics/Prometheus
text exposition format for standard scrapers; --from also accepts a
`serve --json` report (its final registry snapshot is embedded).

top renders a live per-worker dashboard (step, ratio, wire throughput,
rejoins, latency with straggler flags, wire-byte sparklines) by polling
the server's time-series store; --once prints a single frame. metrics
--watch re-scrapes every SECS seconds and prints counter deltas. serve
writes a `.flight.json` post-mortem dump (last steps of every series +
recent spans + anomaly events) when a run aborts, a handler panics, a
fault fires, or the watchdog flags anomalies; --flight names the dump
(default: derived from --json as `<report>.flight.json`).

global flags (any command):
  --log-json <path>  append structured JSONL events to <path>
                     (level from THREELC_LOG, default info)";

/// Magic bytes identifying a `.3lc` container.
const MAGIC: &[u8; 4] = b"3LC\0";
/// Version-2 container header: magic + u32 version + u64 element count +
/// f32 sparsity multiplier. Version-1 files lack the sparsity field and
/// remain readable (the multiplier shows as unrecorded).
const FILE_HEADER_LEN: usize = 4 + 4 + 8 + 4;
const V1_HEADER_LEN: usize = 4 + 4 + 8;
const VERSION: u32 = 2;

type CliResult = Result<String, Box<dyn Error>>;

/// Parses and executes a command line (without the program name),
/// returning the report to print.
///
/// # Errors
///
/// Returns a human-readable error for unknown commands, bad flags,
/// malformed files, or I/O failures.
pub fn run(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("compress") => compress(&args[1..]),
        Some("decompress") => decompress(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("codec") => codec(&args[1..]),
        Some("serve") => crate::netcmd::serve_cmd(&args[1..]),
        Some("worker") => crate::netcmd::worker_cmd(&args[1..]),
        Some("simulate") => crate::netcmd::simulate_cmd(&args[1..]),
        Some("metrics") => crate::netcmd::metrics_cmd(&args[1..]),
        Some("top") => crate::topcmd::top_cmd(&args[1..]),
        Some("trace") => crate::tracecmd::trace_cmd(&args[1..]),
        Some("analyze") => crate::analyzecmd::analyze_cmd(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`").into()),
        None => Err("missing command".into()),
    }
}

fn parse_sparsity(args: &[String]) -> Result<(SparsityMultiplier, bool), Box<dyn Error>> {
    let mut sparsity = SparsityMultiplier::default();
    let mut zre = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sparsity" => {
                let v: f32 = it
                    .next()
                    .ok_or("--sparsity requires a value")?
                    .parse()
                    .map_err(|_| "invalid --sparsity value")?;
                sparsity =
                    SparsityMultiplier::new(v).map_err(|_| "sparsity must be in [1.0, 2.0)")?;
            }
            "--no-zre" => zre = false,
            "--threads" => {
                let _ = it.next(); // validated by parse_threads
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`").into());
            }
            _ => {}
        }
    }
    Ok((sparsity, zre))
}

/// Parses `--threads N` (default 1; `0` = one thread per hardware core).
fn parse_threads(args: &[String]) -> Result<usize, Box<dyn Error>> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let v = it.next().ok_or("--threads requires a value")?;
            return v
                .parse()
                .map_err(|_| format!("invalid --threads value `{v}`").into());
        }
    }
    Ok(1)
}

fn read_f32_file(path: &Path) -> Result<Tensor, Box<dyn Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if bytes.len() % 4 != 0 {
        return Err(format!(
            "{}: length {} is not a multiple of 4 (raw f32 expected)",
            path.display(),
            bytes.len()
        )
        .into());
    }
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    let n = data.len();
    Ok(Tensor::from_vec(data, [n]))
}

/// Extracts exactly `count` positional (non-flag) arguments, skipping
/// flag values such as the one following `--sparsity`.
fn positional(args: &[String], count: usize) -> Result<Vec<&String>, Box<dyn Error>> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--sparsity" || a == "--threads" {
            let _ = it.next();
        } else if !a.starts_with("--") {
            out.push(a);
        }
    }
    if out.len() != count {
        return Err(format!("expected {count} file argument(s), got {}", out.len()).into());
    }
    Ok(out)
}

fn compress(args: &[String]) -> CliResult {
    let files = positional(args, 2)?;
    let (sparsity, zre) = parse_sparsity(args)?;
    let threads = parse_threads(args)?;
    let tensor = read_f32_file(Path::new(files[0]))?;
    let options = ThreeLcOptions {
        sparsity,
        zero_run_encoding: zre,
        error_accumulation: false, // one-shot file compression has no stream
    };
    let mut ctx =
        ThreeLcCompressor::with_options(tensor.shape().clone(), options).with_threads(threads);
    let wire = ctx.compress(&tensor)?;

    let mut out = Vec::with_capacity(FILE_HEADER_LEN + wire.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(tensor.len() as u64).to_le_bytes());
    out.extend_from_slice(&sparsity.value().to_le_bytes());
    out.extend_from_slice(&wire);
    std::fs::write(files[1], &out).map_err(|e| format!("{}: {e}", files[1]))?;

    let in_bytes = tensor.len() * 4;
    let mut report = String::new();
    writeln!(
        report,
        "{} -> {}: {} values, {} -> {} bytes ({:.1}x, {:.3} bits/value, {sparsity})",
        files[0],
        files[1],
        tensor.len(),
        in_bytes,
        out.len(),
        in_bytes as f64 / out.len() as f64,
        out.len() as f64 * 8.0 / tensor.len() as f64,
    )?;
    writeln!(report, "codec: {}", ctx.codec_impl().name())?;
    Ok(report)
}

/// Reports the active codec implementation tier and host support — the
/// line format is stable (the CI dispatch matrix greps it).
fn codec(args: &[String]) -> CliResult {
    if let Some(extra) = args.first() {
        return Err(format!("codec takes no arguments, got `{extra}`").into());
    }
    let sel = threelc::kernels::selection();
    let available: Vec<&str> = threelc::CodecImpl::ALL
        .into_iter()
        .filter(|i| i.is_available())
        .map(|i| i.name())
        .collect();
    let mut report = String::new();
    writeln!(report, "active:    {}", sel.describe())?;
    writeln!(report, "available: {}", available.join(" "))?;
    writeln!(
        report,
        "override:  {}=scalar|swar|simd",
        threelc::CODEC_IMPL_ENV
    )?;
    Ok(report)
}

/// A parsed `.3lc` container header plus its wire payload.
struct Container {
    /// Claimed element count, validated against the payload size.
    count: usize,
    /// Multiplier recorded at compress time; `None` for v1 files.
    sparsity: Option<f32>,
    /// The 3LC wire payload following the header.
    wire: Vec<u8>,
}

fn parse_container(bytes: &[u8], path: &str) -> Result<Container, Box<dyn Error>> {
    if bytes.len() < MAGIC.len() || &bytes[0..4] != MAGIC {
        return Err(format!("{path}: not a .3lc file").into());
    }
    if bytes.len() < V1_HEADER_LEN {
        return Err(format!(
            "{path}: truncated .3lc file ({} bytes, the smallest header is {V1_HEADER_LEN})",
            bytes.len()
        )
        .into());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let (header_len, sparsity) = match version {
        1 => (V1_HEADER_LEN, None),
        VERSION => {
            if bytes.len() < FILE_HEADER_LEN {
                return Err(format!(
                    "{path}: truncated .3lc file ({} bytes, the version-{VERSION} header \
                     alone is {FILE_HEADER_LEN})",
                    bytes.len()
                )
                .into());
            }
            // The stored multiplier is display metadata: decode never
            // consults it (the scale travels inside the wire payload), so
            // an out-of-range value degrades to "unrecorded" rather than
            // rejecting an otherwise-valid file.
            let s = f32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
            let s = SparsityMultiplier::new(s).ok().map(|m| m.value());
            (FILE_HEADER_LEN, s)
        }
        other => return Err(format!("{path}: unsupported version {other}").into()),
    };
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let wire = &bytes[header_len..];
    if wire.len() < threelc::sizing::WIRE_HEADER_LEN {
        return Err(format!(
            "{path}: truncated .3lc file (payload is {} bytes, the wire header alone is {})",
            wire.len(),
            threelc::sizing::WIRE_HEADER_LEN
        )
        .into());
    }
    // Bound the claimed element count by what this payload could possibly
    // encode before sizing any allocation by it: a corrupt or hostile
    // header must not cost memory proportional to its claim.
    let max = threelc::sizing::max_values_for_payload(wire.len()) as u64;
    if count > max {
        return Err(format!(
            "{path}: header claims {count} values but a {}-byte payload holds at most {max}; \
             the file is truncated or corrupt",
            wire.len()
        )
        .into());
    }
    Ok(Container {
        count: count as usize,
        sparsity,
        wire: wire.to_vec(),
    })
}

fn decompress(args: &[String]) -> CliResult {
    let files = positional(args, 2)?;
    let bytes = std::fs::read(files[0]).map_err(|e| format!("{}: {e}", files[0]))?;
    let Container { count, wire, .. } = parse_container(&bytes, files[0])?;
    let ctx = ThreeLcCompressor::new(Shape::new(&[count]), SparsityMultiplier::default())
        .with_threads(parse_threads(args)?);
    let tensor = ctx.decompress(&wire)?;
    let mut out = Vec::with_capacity(tensor.len() * 4);
    for &x in tensor.iter() {
        out.extend_from_slice(&x.to_le_bytes());
    }
    std::fs::write(files[1], &out).map_err(|e| format!("{}: {e}", files[1]))?;
    Ok(format!(
        "{} -> {}: {} values restored\n",
        files[0],
        files[1],
        tensor.len()
    ))
}

/// Chunk granularity of the `inspect` table, in quartic bytes (each
/// quartic byte holds five ternary values).
const CHUNK_QUARTIC_BYTES: usize = 16384;

/// Per-chunk accumulators for the `inspect` table.
#[derive(Default, Clone, Copy)]
struct ChunkStat {
    /// Wire (possibly zero-run-encoded) bytes attributed to the chunk.
    encoded: usize,
    /// Decoded quartic bytes in the chunk.
    quartic: usize,
    /// How many of those quartic bytes are the all-zero byte.
    zeros: usize,
}

/// Walks the wire body once, attributing each encoded byte to the chunk
/// (of [`CHUNK_QUARTIC_BYTES`] decoded quartic bytes) where its output
/// starts. An escape byte's whole run counts in the chunk it begins in.
fn chunk_stats(body: &[u8], zre: bool) -> Vec<ChunkStat> {
    let mut chunks: Vec<ChunkStat> = Vec::new();
    let mut pos = 0usize;
    for &b in body {
        let (decoded, zeros) = if zre && b >= threelc::zrle::ESCAPE_BASE {
            let run = usize::from(b - threelc::zrle::ESCAPE_BASE) + threelc::zrle::MIN_RUN;
            (run, run)
        } else if b == threelc::quartic::ZERO_BYTE {
            (1, 1)
        } else {
            (1, 0)
        };
        let idx = pos / CHUNK_QUARTIC_BYTES;
        if chunks.len() <= idx {
            chunks.resize(idx + 1, ChunkStat::default());
        }
        let c = &mut chunks[idx];
        c.encoded += 1;
        c.quartic += decoded;
        c.zeros += zeros;
        pos += decoded;
    }
    chunks
}

fn inspect(args: &[String]) -> CliResult {
    let files = positional(args, 1)?;
    let bytes = std::fs::read(files[0]).map_err(|e| format!("{}: {e}", files[0]))?;
    let Container {
        count,
        sparsity: stored_s,
        wire,
    } = parse_container(&bytes, files[0])?;
    let ctx = ThreeLcCompressor::new(Shape::new(&[count]), SparsityMultiplier::default());
    let tensor = ctx.decompress(&wire)?;
    let s = TensorStats::of(&tensor);
    let mut report = String::new();
    writeln!(report, "{}:", files[0])?;
    writeln!(report, "  values:        {count}")?;
    writeln!(report, "  file bytes:    {}", bytes.len())?;
    match stored_s {
        Some(v) => writeln!(report, "  sparsity s:    {v}")?,
        None => writeln!(report, "  sparsity s:    unrecorded (v1 container)")?,
    }
    writeln!(
        report,
        "  ratio:         {:.1}x ({:.3} bits/value)",
        (count * 4) as f64 / bytes.len() as f64,
        bytes.len() as f64 * 8.0 / count.max(1) as f64,
    )?;
    writeln!(report, "  scale M:       {:.6}", tensor.max_abs())?;
    writeln!(report, "  zero fraction: {:.2}%", s.zero_fraction * 100.0)?;

    // ---- Per-chunk wire anatomy. The container was validated by the
    // decompress above, so the header fields can be trusted here.
    let zre = wire[0] & threelc::sizing::WIRE_FLAG_ZRE != 0;
    let body = &wire[threelc::sizing::WIRE_HEADER_LEN..];
    writeln!(
        report,
        "  encoding:      {}",
        if zre { "quartic + zero-run" } else { "quartic" }
    )?;
    writeln!(
        report,
        "  codec:         {}",
        threelc::kernels::selection().describe()
    )?;
    writeln!(
        report,
        "  chunks ({CHUNK_QUARTIC_BYTES} quartic bytes = {} values each):",
        CHUNK_QUARTIC_BYTES * threelc::quartic::VALUES_PER_BYTE
    )?;
    writeln!(
        report,
        "    {:>5}  {:>10}  {:>10}  {:>8}  {:>9}  {:>6}",
        "chunk", "bytes", "values", "ratio", "zero-run", "s"
    )?;
    // One multiplier governs the whole file today; the column still
    // prints per chunk so adaptive multi-tensor dumps render unchanged.
    let s_col = match stored_s {
        Some(v) => format!("{v:.2}"),
        None => "-".to_string(),
    };
    let mut remaining = count;
    for (idx, c) in chunk_stats(body, zre).iter().enumerate() {
        let values = (c.quartic * threelc::quartic::VALUES_PER_BYTE).min(remaining);
        remaining -= values;
        writeln!(
            report,
            "    {:>5}  {:>10}  {:>10}  {:>7.1}x  {:>8.2}%  {s_col:>6}",
            idx,
            c.encoded,
            values,
            (values * 4) as f64 / c.encoded.max(1) as f64,
            c.zeros as f64 / c.quartic.max(1) as f64 * 100.0,
        )?;
    }

    // ---- Zero-run-length distribution, measured exactly as the encoder
    // emits runs (lone zeros are runs of 1, long runs split at MAX_RUN).
    let quartic_bytes = if zre {
        std::borrow::Cow::Owned(threelc::zrle::decode(body))
    } else {
        std::borrow::Cow::Borrowed(body)
    };
    let runs = threelc_obs::Histogram::new();
    threelc::zrle::encode_with_runs(&quartic_bytes, |run| runs.record(run as f64))
        .map_err(|e| format!("{}: body is not a quartic stream: {e}", files[0]))?;
    let r = runs.snapshot();
    if r.count == 0 {
        writeln!(report, "  zero runs:     none")?;
    } else {
        writeln!(
            report,
            "  zero runs:     {} (p50 {:.0}, p95 {:.0}, max {:.0} quartic bytes)",
            r.count,
            r.percentile(50.0),
            r.percentile(95.0),
            r.max,
        )?;
    }
    Ok(report)
}

fn stats(args: &[String]) -> CliResult {
    let files = positional(args, 1)?;
    let (sparsity, _) = parse_sparsity(args)?;
    let tensor = read_f32_file(Path::new(files[0]))?;
    let s = TensorStats::of(&tensor);
    let q = TernaryTensor::quantize(&tensor, sparsity)?;
    let mut report = String::new();
    writeln!(report, "{}:", files[0])?;
    writeln!(report, "  values:     {}", s.count)?;
    writeln!(report, "  mean/std:   {:.6} / {:.6}", s.mean, s.std_dev)?;
    writeln!(report, "  min/max:    {:.6} / {:.6}", s.min, s.max)?;
    writeln!(
        report,
        "  quantized zeros at {sparsity}: {:.2}%",
        q.zero_fraction() * 100.0
    )?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("threelc-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn write_f32(path: &Path, data: &[f32]) {
        let mut bytes = Vec::new();
        for x in data {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        std::fs::write(path, bytes).expect("write");
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn compress_decompress_roundtrip_with_bounded_error() {
        let input = tmp("in.f32");
        let packed = tmp("out.3lc");
        let restored = tmp("back.f32");
        let data: Vec<f32> = (0..1000)
            .map(|i| ((i as f32) * 0.37).sin() * 0.01)
            .collect();
        write_f32(&input, &data);

        let report = run(&s(&[
            "compress",
            input.to_str().unwrap(),
            packed.to_str().unwrap(),
            "--sparsity",
            "1.5",
        ]))
        .expect("compress");
        assert!(report.contains("1000 values"));
        // The report names the codec tier that ran.
        assert!(report.contains("codec: "), "got: {report}");

        run(&s(&[
            "decompress",
            packed.to_str().unwrap(),
            restored.to_str().unwrap(),
        ]))
        .expect("decompress");

        let back = read_f32_file(&restored).expect("read back");
        let orig = Tensor::from_slice(&data);
        let m = orig.max_abs() * 1.5;
        assert!(orig.sub(&back).unwrap().max_abs() <= m / 2.0 + 1e-7);
    }

    #[test]
    fn inspect_reports_ratio() {
        let input = tmp("i2.f32");
        let packed = tmp("i2.3lc");
        write_f32(&input, &vec![0.0f32; 700]);
        run(&s(&[
            "compress",
            input.to_str().unwrap(),
            packed.to_str().unwrap(),
        ]))
        .expect("compress");
        let report = run(&s(&["inspect", packed.to_str().unwrap()])).expect("inspect");
        assert!(report.contains("values:        700"));
        assert!(report.contains("zero fraction: 100.00%"));
        // The per-chunk table: 700 zeros quantize to 140 quartic zero
        // bytes, zero-run encoded into 10 escape bytes (one chunk).
        assert!(report.contains("encoding:      quartic + zero-run"));
        assert!(report.contains("  codec:         "), "got: {report}");
        assert!(report.contains("280.0x"), "got: {report}");
        assert!(report.contains("100.00%"));
        // 140 zero bytes = 10 maximal runs of 14.
        assert!(
            report.contains("zero runs:     10 (p50 14, p95 14, max 14 quartic bytes)"),
            "got: {report}"
        );
    }

    #[test]
    fn codec_command_reports_tiers() {
        let report = run(&s(&["codec"])).expect("codec");
        // Stable grep surface for the CI dispatch matrix.
        assert!(report.contains("active:    "), "got: {report}");
        assert!(report.contains("available: scalar swar"), "got: {report}");
        assert!(report.contains("THREELC_CODEC_IMPL"), "got: {report}");
        let active = report
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("active:    "))
            .expect("active line");
        let tier = active.split_whitespace().next().expect("tier name");
        assert!(
            threelc::CodecImpl::parse(tier).is_some(),
            "active line must lead with a tier name, got: {active}"
        );
        assert!(run(&s(&["codec", "extra"])).is_err());
    }

    #[test]
    fn stats_command() {
        let input = tmp("s.f32");
        write_f32(&input, &[1.0, -1.0, 0.5, 0.0]);
        let report =
            run(&s(&["stats", input.to_str().unwrap(), "--sparsity", "1.9"])).expect("stats");
        assert!(report.contains("values:     4"));
        assert!(report.contains("min/max:    -1.000000 / 1.000000"));
    }

    #[test]
    fn no_zre_flag_changes_size() {
        let input = tmp("z.f32");
        let with = tmp("z1.3lc");
        let without = tmp("z2.3lc");
        write_f32(&input, &vec![0.0f32; 7000]);
        run(&s(&[
            "compress",
            input.to_str().unwrap(),
            with.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "compress",
            input.to_str().unwrap(),
            without.to_str().unwrap(),
            "--no-zre",
        ]))
        .unwrap();
        let a = std::fs::metadata(&with).unwrap().len();
        let b = std::fs::metadata(&without).unwrap().len();
        assert!(a * 10 < b, "ZRE file {a} should be far below no-ZRE {b}");

        // The inspect table identifies both encodings.
        let plain = run(&s(&["inspect", without.to_str().unwrap()])).expect("inspect");
        assert!(plain.contains("encoding:      quartic\n"), "got: {plain}");
        // 7000 values → 1400 quartic bytes, all zero, no run collapsing.
        assert!(plain.contains("zero runs:     100 "), "got: {plain}");
    }

    #[test]
    fn threads_flag_changes_nothing_but_is_accepted() {
        let input = tmp("t.f32");
        let serial = tmp("t1.3lc");
        let parallel = tmp("t4.3lc");
        let data: Vec<f32> = (0..9000).map(|i| ((i as f32) * 0.11).sin() * 0.2).collect();
        write_f32(&input, &data);
        run(&s(&[
            "compress",
            input.to_str().unwrap(),
            serial.to_str().unwrap(),
        ]))
        .expect("serial compress");
        run(&s(&[
            "compress",
            input.to_str().unwrap(),
            parallel.to_str().unwrap(),
            "--threads",
            "4",
        ]))
        .expect("parallel compress");
        assert_eq!(
            std::fs::read(&serial).unwrap(),
            std::fs::read(&parallel).unwrap(),
            "--threads must not change the wire bytes"
        );

        let back = tmp("t4.f32");
        run(&s(&[
            "decompress",
            parallel.to_str().unwrap(),
            back.to_str().unwrap(),
            "--threads",
            "0",
        ]))
        .expect("parallel decompress");
        assert_eq!(read_f32_file(&back).expect("read back").len(), data.len());

        assert!(run(&s(&["compress", "a", "b", "--threads"])).is_err());
        assert!(run(&s(&["compress", "a", "b", "--threads", "x"])).is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["compress", "only-one-file"])).is_err());
        assert!(run(&s(&["compress", "a", "b", "--sparsity", "9.0"])).is_err());
        assert!(run(&s(&["compress", "a", "b", "--bogus"])).is_err());
        // Nonexistent input.
        assert!(run(&s(&["stats", "/nonexistent/x.f32"])).is_err());
        // Not a .3lc file.
        let junk = tmp("junk.3lc");
        std::fs::write(&junk, b"hello").unwrap();
        assert!(run(&s(&["inspect", junk.to_str().unwrap()])).is_err());
    }

    #[test]
    fn truncated_containers_report_cleanly() {
        let input = tmp("trunc.f32");
        let packed = tmp("trunc.3lc");
        write_f32(&input, &vec![0.25f32; 600]);
        run(&s(&[
            "compress",
            input.to_str().unwrap(),
            packed.to_str().unwrap(),
        ]))
        .expect("compress");
        let full = std::fs::read(&packed).expect("read container");

        // Cut the file at every structurally interesting point: inside the
        // magic, inside the file header, inside the wire header, and one
        // byte short of complete. Each must yield a clean error from both
        // readers — no panic, no huge allocation.
        for cut in [
            2,
            4,
            10,
            FILE_HEADER_LEN,
            FILE_HEADER_LEN + 4,
            full.len() - 1,
        ] {
            let cut_file = tmp(&format!("cut{cut}.3lc"));
            std::fs::write(&cut_file, &full[..cut]).expect("write truncation");
            let path = cut_file.to_str().unwrap();
            assert!(
                run(&s(&["inspect", path])).is_err(),
                "inspect accepted a {cut}-byte truncation"
            );
            let out = tmp(&format!("cut{cut}.f32"));
            assert!(
                run(&s(&["decompress", path, out.to_str().unwrap()])).is_err(),
                "decompress accepted a {cut}-byte truncation"
            );
        }
    }

    #[test]
    fn hostile_count_claims_are_rejected_before_allocation() {
        // A 16-byte payload cannot hold u64::MAX values; the claim must be
        // rejected up front instead of sizing buffers from it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let hostile = tmp("hostile.3lc");
        std::fs::write(&hostile, &bytes).unwrap();
        let err = run(&s(&["inspect", hostile.to_str().unwrap()]))
            .expect_err("hostile claim must be rejected");
        assert!(err.to_string().contains("claims"), "got: {err}");
    }

    #[test]
    fn container_records_the_sparsity_multiplier() {
        let input = tmp("sv.f32");
        let packed = tmp("sv.3lc");
        write_f32(&input, &vec![0.125f32; 500]);
        run(&s(&[
            "compress",
            input.to_str().unwrap(),
            packed.to_str().unwrap(),
            "--sparsity",
            "1.75",
        ]))
        .expect("compress");
        let report = run(&s(&["inspect", packed.to_str().unwrap()])).expect("inspect");
        assert!(report.contains("sparsity s:    1.75"), "got: {report}");
        // The chunk table carries the multiplier column.
        assert!(report.contains("zero-run       s"), "got: {report}");
        assert!(report.contains("  1.75\n"), "got: {report}");

        // A version-1 container (no sparsity field) still parses; the
        // multiplier shows as unrecorded.
        let v2 = std::fs::read(&packed).unwrap();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&v2[0..4]);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v2[8..16]);
        v1.extend_from_slice(&v2[FILE_HEADER_LEN..]);
        let old = tmp("sv-v1.3lc");
        std::fs::write(&old, &v1).unwrap();
        let report = run(&s(&["inspect", old.to_str().unwrap()])).expect("v1 inspect");
        assert!(
            report.contains("sparsity s:    unrecorded (v1 container)"),
            "got: {report}"
        );
        let back = tmp("sv-v1.f32");
        run(&s(&[
            "decompress",
            old.to_str().unwrap(),
            back.to_str().unwrap(),
        ]))
        .expect("v1 decompress");
        assert_eq!(read_f32_file(&back).expect("read back").len(), 500);

        // Unknown future versions are rejected up front.
        let mut v9 = v2.clone();
        v9[4..8].copy_from_slice(&9u32.to_le_bytes());
        let fut = tmp("sv-v9.3lc");
        std::fs::write(&fut, &v9).unwrap();
        let err = run(&s(&["inspect", fut.to_str().unwrap()])).expect_err("future version");
        assert!(
            err.to_string().contains("unsupported version 9"),
            "got: {err}"
        );
    }

    #[test]
    fn policy_flag_drives_an_adaptive_loopback_run() {
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
            probe.local_addr().expect("addr").to_string()
        };
        let json = tmp("policy-report.json");
        let spec = "schedule:from=1.0,to=1.9,over=3";
        let serve_args = s(&[
            "serve",
            "--addr",
            &addr,
            "--workers",
            "1",
            "--steps",
            "4",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--policy",
            spec,
            "--json",
            json.to_str().unwrap(),
        ]);
        let server = std::thread::spawn(move || run(&serve_args).map_err(|e| e.to_string()));
        // The worker accepts the same --policy flag (the server's config
        // is authoritative), so symmetric launch scripts work.
        let worker_args = s(&["worker", "--addr", &addr, "--id", "0", "--policy", spec]);
        let worker = std::thread::spawn(move || run(&worker_args).map_err(|e| e.to_string()));
        worker.join().expect("worker thread").expect("worker run");
        let report = server.join().expect("server thread").expect("serve run");
        assert!(
            report.contains("policy [schedule:from=1,to=1.9,over=3,layer=0]"),
            "got: {report}"
        );

        // The JSON report records every decision, and the sequence moved.
        let dumped = std::fs::read_to_string(&json).expect("json report");
        let parsed: threelc_net::NetReport = serde_json::from_str(&dumped).expect("parse report");
        assert!(!parsed.result.trace.policy.records.is_empty());
        assert!(!parsed.result.trace.policy.is_constant());

        // `simulate` with the same flags prints the same fingerprint AND
        // the same decision summary — the equality CI's policy smoke
        // greps for.
        let crc_line = report
            .lines()
            .find(|l| l.starts_with("final model crc32: "))
            .expect("fingerprint line");
        let policy_line = report
            .lines()
            .find(|l| l.starts_with("policy ["))
            .expect("policy line");
        let sim = run(&s(&[
            "simulate",
            "--workers",
            "1",
            "--steps",
            "4",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--policy",
            spec,
        ]))
        .expect("simulate run");
        assert!(sim.contains(crc_line), "serve: {report}\nsimulate: {sim}");
        assert!(
            sim.contains(policy_line),
            "serve: {report}\nsimulate: {sim}"
        );
    }

    #[test]
    fn aggregate_flag_selects_the_server_aggregation_path() {
        let base = [
            "simulate",
            "--workers",
            "2",
            "--steps",
            "3",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
        ];
        let run_with = |mode: &str| {
            let mut args = s(&base);
            args.extend(["--aggregate".to_string(), mode.to_string()]);
            run(&args).expect("simulate run")
        };
        let crc = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("final model crc32: "))
                .expect("fingerprint line")
                .to_string()
        };
        // The default (exact) and the seed f32 path are bit-identical.
        let f32_out = run_with("f32");
        let exact_out = run_with("exact");
        let default_out = run(&s(&base)).expect("simulate run");
        assert_eq!(crc(&f32_out), crc(&exact_out));
        assert_eq!(crc(&exact_out), crc(&default_out));
        // Compressed mode runs to completion (its fingerprint may differ).
        let _ = run_with("compressed");
        // Unknown modes are a flag error, not a silent default.
        let mut bad = s(&base);
        bad.extend(["--aggregate".to_string(), "fp32".to_string()]);
        let err = run(&bad).expect_err("unknown aggregate mode");
        assert!(err.to_string().contains("--aggregate"), "got: {err}");
    }

    #[test]
    fn serve_and_worker_commands_run_a_loopback_experiment() {
        // Reserve an ephemeral port, then immediately reuse it. The worker
        // commands retry with backoff, so they tolerate starting first.
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
            probe.local_addr().expect("addr").to_string()
        };
        let json = tmp("net-report.json");
        let serve_args = s(&[
            "serve",
            "--addr",
            &addr,
            "--workers",
            "2",
            "--steps",
            "3",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--sparsity",
            "1.5",
            "--json",
            json.to_str().unwrap(),
        ]);
        // `run` returns `Box<dyn Error>`, which is not `Send`; stringify
        // errors inside the threads.
        let server = std::thread::spawn(move || run(&serve_args).map_err(|e| e.to_string()));
        let workers: Vec<_> = (0..2)
            .map(|id| {
                let args = s(&["worker", "--addr", &addr, "--id", &id.to_string()]);
                std::thread::spawn(move || run(&args).map_err(|e| e.to_string()))
            })
            .collect();
        for w in workers {
            let report = w.join().expect("worker thread").expect("worker run");
            assert!(report.contains("finished 3 steps"), "got: {report}");
        }
        let report = server.join().expect("server thread").expect("serve run");
        assert!(report.contains("final eval"), "got: {report}");
        let dumped = std::fs::read_to_string(&json).expect("json report");
        let parsed: threelc_net::NetReport = serde_json::from_str(&dumped).expect("parse report");
        assert_eq!(parsed.connections.len(), 2);
        assert_eq!(parsed.result.trace.steps.len(), 3);

        // `threelc simulate` with the same experiment flags prints the
        // exact same final-model fingerprint line — the equality the CI
        // chaos smoke greps for.
        let crc_line = report
            .lines()
            .find(|l| l.starts_with("final model crc32: "))
            .expect("serve prints the fingerprint line");
        let sim = run(&s(&[
            "simulate",
            "--workers",
            "2",
            "--steps",
            "3",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--sparsity",
            "1.5",
        ]))
        .expect("simulate run");
        assert!(
            sim.contains(crc_line),
            "simulate fingerprint diverged:\nserve: {report}\nsimulate: {sim}"
        );
    }

    #[test]
    fn metrics_command_scrapes_a_live_server() {
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
            probe.local_addr().expect("addr").to_string()
        };
        let serve_args = s(&[
            "serve",
            "--addr",
            &addr,
            "--workers",
            "1",
            "--steps",
            "2",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
        ]);
        let server = std::thread::spawn(move || run(&serve_args).map_err(|e| e.to_string()));

        // Scrape during the handshake phase (no worker yet), retrying
        // until the server thread has bound the port.
        let mut text = None;
        for _ in 0..250 {
            match run(&s(&["metrics", &addr])) {
                Ok(t) => {
                    text = Some(t);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        let text = text.expect("metrics scrape against a live server");
        assert!(!text.is_empty());
        let json = run(&s(&["metrics", &addr, "--json"])).expect("json scrape");
        let snap: threelc_obs::Snapshot = serde_json::from_str(&json).expect("parse snapshot");
        assert!(!snap.render_text().is_empty());

        // Let the run finish.
        let worker = run(&s(&["worker", "--addr", &addr, "--id", "0"])).expect("worker run");
        assert!(worker.contains("finished 2 steps"), "got: {worker}");
        server.join().expect("server thread").expect("serve run");
    }

    #[test]
    fn metrics_command_flags_are_validated() {
        assert!(run(&s(&["metrics"])).is_err()); // addr missing
        assert!(run(&s(&["metrics", "a", "b"])).is_err()); // two addrs
        assert!(run(&s(&["metrics", "127.0.0.1:1", "--bogus"])).is_err());
        assert!(run(&s(&["metrics", "not an address"])).is_err());
        // --watch validation: value required, positive, live-only.
        assert!(run(&s(&["metrics", "127.0.0.1:1", "--watch"])).is_err());
        assert!(run(&s(&["metrics", "127.0.0.1:1", "--watch", "x"])).is_err());
        assert!(run(&s(&["metrics", "127.0.0.1:1", "--watch", "0"])).is_err());
        let err = run(&s(&["metrics", "--from", "f.jsonl", "--watch", "1"]))
            .expect_err("--watch needs a live server");
        assert!(err.to_string().contains("--watch"), "got: {err}");
    }

    #[test]
    fn net_command_flags_are_validated() {
        assert!(run(&s(&["serve"])).is_err()); // --addr missing
        assert!(run(&s(&["serve", "--addr", "x", "--bogus", "1"])).is_err());
        assert!(run(&s(&["serve", "--addr", "x", "--workers"])).is_err());
        assert!(run(&s(&["serve", "--addr", "x", "--scheme", "zstd"])).is_err());
        assert!(run(&s(&["serve", "--addr", "x", "--sparsity", "3.0"])).is_err());
        assert!(run(&s(&["worker", "--addr", "127.0.0.1:1"])).is_err()); // --id missing
        assert!(run(&s(&["worker", "--id", "0"])).is_err()); // --addr missing
        assert!(run(&s(&["worker", "--addr", "not-an-address", "--id", "0"])).is_err());
        // Fault-tolerance flags are validated up front.
        assert!(run(&s(&["serve", "--addr", "x", "--max-rejoins", "many"])).is_err());
        assert!(run(&s(&["serve", "--addr", "x", "--rejoin-timeout"])).is_err());
        let bad_fault = run(&s(&[
            "worker",
            "--addr",
            "127.0.0.1:1",
            "--id",
            "0",
            "--inject-fault",
            "meteor@3",
        ]))
        .expect_err("unknown fault kind");
        assert!(bad_fault.to_string().contains("meteor"), "got: {bad_fault}");
        assert!(run(&s(&["simulate", "--bogus", "1"])).is_err());
        assert!(run(&s(&["simulate", "--scheme", "zstd"])).is_err());
        // Policy specs are validated at every entry point.
        for cmd in [
            vec!["serve", "--addr", "x", "--policy", "warp:9"],
            vec!["simulate", "--policy", "fixed:5.0"],
            vec!["simulate", "--policy", "schedule:from=1.0"],
            vec![
                "worker",
                "--addr",
                "127.0.0.1:1",
                "--id",
                "0",
                "--policy",
                "fixed:0.5",
            ],
        ] {
            let err = run(&s(&cmd)).expect_err("bad policy spec must be rejected");
            assert!(err.to_string().contains("policy"), "got: {err}");
        }
    }

    #[test]
    fn simulate_command_is_deterministic() {
        let args = s(&[
            "simulate",
            "--workers",
            "2",
            "--steps",
            "2",
            "--width",
            "8",
            "--blocks",
            "1",
            "--batch",
            "4",
        ]);
        let a = run(&args).expect("first simulate");
        let b = run(&args).expect("second simulate");
        assert_eq!(a, b);
        assert!(a.contains("final model crc32: "), "got: {a}");
        assert!(a.contains("simulated 2 worker(s) for 2 steps"), "got: {a}");
    }

    #[test]
    fn odd_length_f32_rejected() {
        let input = tmp("odd.f32");
        std::fs::write(&input, [1u8, 2, 3]).unwrap();
        assert!(run(&s(&["stats", input.to_str().unwrap()])).is_err());
    }

    #[test]
    fn metrics_from_renders_the_checked_in_fixture() {
        let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/metrics.jsonl");
        let text = run(&s(&["metrics", "--from", fixture])).expect("offline render");
        assert!(text.contains("net.server.bytes_in"), "got: {text}");
        assert!(text.contains("4096"), "got: {text}");
        assert!(text.contains("net.server.frame_seconds"), "got: {text}");

        let json = run(&s(&["metrics", "--from", fixture, "--json"])).expect("json render");
        let snap: threelc_obs::Snapshot = serde_json::from_str(&json).expect("parse snapshot");
        assert_eq!(snap.counter("net.server.bytes_in"), Some(4096));
        assert_eq!(snap.counter("trace.steps"), Some(4));
        assert_eq!(snap.gauge("trace.loss"), Some(0.75));
        assert_eq!(
            snap.histogram("net.server.frame_seconds")
                .expect("histogram")
                .count,
            2
        );

        // --prom renders the same snapshot in Prometheus text exposition.
        let prom = run(&s(&["metrics", "--from", fixture, "--prom"])).expect("prom render");
        assert!(
            prom.contains("# TYPE net_server_bytes_in counter"),
            "got: {prom}"
        );
        assert!(prom.contains("net_server_bytes_in 4096"), "got: {prom}");
        assert!(
            prom.contains("# TYPE net_server_frame_seconds histogram"),
            "got: {prom}"
        );
        assert!(
            prom.contains("net_server_frame_seconds_bucket{le=\"+Inf\"} 2"),
            "got: {prom}"
        );
        assert!(run(&s(&["metrics", "--from", fixture, "--prom", "--json"])).is_err());
        assert!(run(&s(&["metrics", "127.0.0.1:1", "--prom", "--watch", "1"])).is_err());

        // Flag validation and failure modes.
        assert!(run(&s(&["metrics", "--from"])).is_err()); // path missing
        assert!(run(&s(&["metrics", "127.0.0.1:1", "--from", fixture])).is_err()); // both sources
        assert!(run(&s(&["metrics", "--from", "/nonexistent/log.jsonl"])).is_err());
        // A log with events but no snapshot fails with a pointed message.
        let empty = tmp("nosnap.jsonl");
        std::fs::write(&empty, "{\"ts_ms\":1,\"level\":\"info\",\"event\":\"x\"}\n").unwrap();
        let err = run(&s(&["metrics", "--from", empty.to_str().unwrap()]))
            .expect_err("no snapshot event");
        assert!(
            err.to_string().contains("no metrics.snapshot"),
            "got: {err}"
        );
        // Garbage lines are rejected with the line number.
        let junk = tmp("junk.jsonl");
        std::fs::write(&junk, "not json\n").unwrap();
        assert!(run(&s(&["metrics", "--from", junk.to_str().unwrap()])).is_err());
    }

    #[test]
    fn trace_command_flags_are_validated() {
        assert!(run(&s(&["trace"])).is_err()); // source missing
        assert!(run(&s(&["trace", "a", "b"])).is_err()); // two sources
        assert!(run(&s(&["trace", "a", "--bogus"])).is_err());
        assert!(run(&s(&["trace", "a", "--chrome"])).is_err()); // path missing
        assert!(run(&s(&["trace", "a", "--steps", "x"])).is_err());
        // Not a file → treated as a live address → unreachable.
        assert!(run(&s(&["trace", "not-an-address-or-file"])).is_err());
        // A report file without trace data points at THREELC_TRACE.
        let report = threelc_net::NetReport {
            result: threelc_distsim::run_experiment(&threelc_distsim::ExperimentConfig {
                workers: 1,
                batch_per_worker: 4,
                total_steps: 2,
                model_width: 8,
                model_blocks: 1,
                ..threelc_distsim::ExperimentConfig::for_scheme(
                    threelc_baselines::SchemeKind::Float32,
                )
            }),
            connections: vec![],
            node_traces: vec![],
            anomalies: vec![],
            final_model_crc32: 0,
            aggregate_mode: "exact".into(),
            faults: threelc_net::FaultsReport::default(),
            series: Default::default(),
            analysis: None,
            metrics: Default::default(),
        };
        let path = tmp("untraced-report.json");
        std::fs::write(&path, serde_json::to_string(&report).unwrap()).unwrap();
        let err = run(&s(&["trace", path.to_str().unwrap()])).expect_err("no trace data");
        assert!(err.to_string().contains("THREELC_TRACE"), "got: {err}");
    }

    #[test]
    fn trace_command_renders_checks_and_exports_a_traced_loopback() {
        // End-to-end: a traced loopback serve/worker run through the CLI,
        // then `threelc trace` on the dumped report.
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
            probe.local_addr().expect("addr").to_string()
        };
        let json = tmp("traced-report.json");
        let serve_args = s(&[
            "serve",
            "--addr",
            &addr,
            "--workers",
            "2",
            "--steps",
            "4",
            "--width",
            "16",
            "--blocks",
            "1",
            "--batch",
            "8",
            "--scheme",
            "3lc",
            "--sparsity",
            "1.5",
            "--json",
            json.to_str().unwrap(),
        ]);
        threelc_obs::set_trace_enabled(true);
        let server = std::thread::spawn(move || run(&serve_args).map_err(|e| e.to_string()));
        let workers: Vec<_> = (0..2)
            .map(|id| {
                let args = s(&["worker", "--addr", &addr, "--id", &id.to_string()]);
                std::thread::spawn(move || run(&args).map_err(|e| e.to_string()))
            })
            .collect();
        for w in workers {
            w.join().expect("worker thread").expect("worker run");
        }
        let report = server.join().expect("server thread").expect("serve run");
        threelc_obs::set_trace_enabled(false);
        assert!(
            report.contains("collected 3 node trace(s)"),
            "got: {report}"
        );

        // Render + export. The phase table and every phase name must show.
        let chrome = tmp("trace.chrome.json");
        let text = run(&s(&[
            "trace",
            json.to_str().unwrap(),
            "--chrome",
            chrome.to_str().unwrap(),
        ]))
        .expect("trace render");
        assert!(text.contains("3 node(s), 4 step(s)"), "got: {text}");
        assert!(text.contains("clock worker0"), "got: {text}");
        assert!(text.contains("wrote Chrome trace"), "got: {text}");
        let exported = std::fs::read_to_string(&chrome).expect("chrome file");
        let parsed: serde_json::Value = serde_json::from_str(&exported).expect("chrome parses");
        assert!(parsed.get("traceEvents").is_some());
        for phase in threelc_obs::PHASES {
            assert!(
                exported.contains(&format!("\"name\":\"{phase}\"")),
                "phase {phase} missing from Chrome export"
            );
        }

        // --check must pass on a healthy run. Debug-build warm-up on a
        // loaded host can make the worker-local `compute` phase a genuine
        // 4x-median outlier, so check a copy with compute spans removed —
        // the eight wire phases (all sub-millisecond at this width, below
        // the watchdog floor) and the deterministic step statistics are
        // what this asserts on.
        let mut parsed: threelc_net::NetReport =
            serde_json::from_str(&std::fs::read_to_string(&json).expect("report"))
                .expect("parse report");
        for lane in &mut parsed.node_traces {
            lane.spans.retain(|s| s.name != "compute");
        }
        let clean = tmp("clean-report.json");
        std::fs::write(&clean, serde_json::to_string(&parsed).unwrap()).unwrap();
        let ok = run(&s(&["trace", clean.to_str().unwrap(), "--check"])).expect("clean check");
        assert!(ok.contains("no anomalies"), "got: {ok}");

        // … and an injected synthetic straggler fails it: make worker1's
        // step-0 encode two seconds long (the median is microseconds).
        let lane = parsed
            .node_traces
            .iter_mut()
            .find(|n| n.clock == "worker1")
            .expect("worker1 trace");
        lane.spans.push(threelc_obs::SpanRecord {
            trace: 1,
            span: u64::MAX,
            parent: 0,
            name: "encode".into(),
            node: "worker1".into(),
            step: 0,
            worker: 1,
            start_ns: 0,
            end_ns: 2_000_000_000,
        });
        let straggled = tmp("straggled-report.json");
        std::fs::write(&straggled, serde_json::to_string(&parsed).unwrap()).unwrap();
        let err = run(&s(&["trace", straggled.to_str().unwrap(), "--check"]))
            .expect_err("straggler must fail --check");
        assert!(err.to_string().contains("straggler"), "got: {err}");
    }
}
