//! The `trace` subcommand: cross-node timeline reconstruction, Chrome
//! trace export, and the watchdog gate.
//!
//! Reads either a `threelc serve --json` report (the usual path: the
//! server collects every node's span buffer at shutdown) or a live server
//! address (a non-draining snapshot of the server's own buffer). The
//! per-node buffers merge onto one clock-aligned axis via the barrier
//! round-trip offset estimate in `threelc_obs::timeline`, render as a
//! per-step phase breakdown, and optionally export Chrome-trace JSON for
//! `chrome://tracing` / Perfetto (`--chrome out.json`). With `--check`
//! the command exits nonzero when the anomaly watchdog flags stragglers,
//! compression-ratio drift, or residual-L2 blowups — the CI gate.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Duration;
use threelc_net::NetReport;
use threelc_obs::{watchdog, FlightDump, MergedTimeline, NodeTrace, StepStats, WatchdogConfig};

type CliResult = Result<String, Box<dyn Error>>;

/// Default row cap of the per-step phase table (`--steps 0` = all).
const DEFAULT_MAX_STEPS: usize = 20;

/// `threelc trace <report.json|addr> [--chrome out.json] [--check]
/// [--steps N]`.
pub fn trace_cmd(args: &[String]) -> CliResult {
    let mut source: Option<&str> = None;
    let mut chrome: Option<&str> = None;
    let mut check = false;
    let mut max_steps = DEFAULT_MAX_STEPS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => {
                chrome = Some(
                    it.next()
                        .ok_or("--chrome requires an output path")?
                        .as_str(),
                );
            }
            "--check" => check = true,
            "--steps" => {
                let v = it.next().ok_or("--steps requires a value")?;
                max_steps = v
                    .parse()
                    .map_err(|_| format!("invalid value `{v}` for --steps"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`").into());
            }
            other => {
                if source.replace(other).is_some() {
                    return Err("trace takes exactly one report file or server address".into());
                }
            }
        }
    }
    let source = source
        .ok_or("trace requires a `threelc serve --json` report file or a live server address")?;

    // A `.flight.json` post-mortem dump is its own artifact (trigger,
    // anomaly ring, series store); render it directly instead of forcing
    // it through the report schema.
    if std::path::Path::new(source).is_file() {
        let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
        if let Ok(dump) = FlightDump::from_json(&text) {
            return render_flight(&dump, check, max_steps);
        }
    }

    let (node_traces, step_stats) = load_traces(source)?;
    let span_count: usize = node_traces.iter().map(|n| n.spans.len()).sum();
    if span_count == 0 {
        return Err(format!(
            "{source}: no trace data; run the server and workers with THREELC_TRACE=1"
        )
        .into());
    }

    let timeline = MergedTimeline::build(&node_traces);
    let anomalies = watchdog::check(&timeline, &step_stats, &WatchdogConfig::default());

    let mut out = String::new();
    writeln!(
        out,
        "{span_count} spans from {} node(s), {} step(s)",
        node_traces.len(),
        timeline.steps().len()
    )?;
    out.push_str(&timeline.render_text(max_steps));

    if let Some(path) = chrome {
        let json = timeline.chrome_json();
        // Validate the export before writing: a Chrome trace that does
        // not parse is worse than no file.
        serde_json::from_str::<serde_json::Value>(&json)
            .map_err(|e| format!("internal error: Chrome export is not valid JSON: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
        writeln!(
            out,
            "wrote Chrome trace ({} aligned spans) to {path}; open in chrome://tracing or https://ui.perfetto.dev",
            timeline.spans.len()
        )?;
    }

    if anomalies.is_empty() {
        if check {
            writeln!(out, "trace check passed: no anomalies")?;
        }
    } else {
        for a in &anomalies {
            writeln!(out, "anomaly [{}]: {}", a.kind, a.detail)?;
        }
        if check {
            let mut msg = format!("trace check failed: {} anomaly(ies)\n", anomalies.len());
            for a in &anomalies {
                let _ = writeln!(msg, "  [{}] {}", a.kind, a.detail);
            }
            return Err(msg.into());
        }
    }
    Ok(out)
}

/// Renders a flight-recorder dump: the trigger/anomaly summary, the tail
/// of every worker's series, and — when the dump carries spans — the
/// merged timeline. With `--check` the recorded anomalies fail the gate,
/// exactly as live watchdog findings would.
fn render_flight(dump: &FlightDump, check: bool, max_steps: usize) -> CliResult {
    let mut out = dump.render_text();
    out.push_str(&crate::topcmd::render_dashboard(&dump.series));
    if !dump.spans.is_empty() {
        let timeline = MergedTimeline::build(&dump.spans);
        out.push_str(&timeline.render_text(max_steps));
    }
    if check && !dump.anomalies.is_empty() {
        let mut msg = format!(
            "trace check failed: flight dump ({}) records {} anomaly(ies)\n",
            dump.trigger,
            dump.anomalies.len()
        );
        for a in &dump.anomalies {
            let _ = writeln!(msg, "  [{}] {}", a.kind, a.detail);
        }
        return Err(msg.into());
    }
    if check {
        writeln!(out, "trace check passed: no anomalies")?;
    }
    Ok(out)
}

/// Loads per-node span buffers and per-step compression statistics from a
/// report file, or scrapes a live server when `source` is not a file.
fn load_traces(source: &str) -> Result<(Vec<NodeTrace>, Vec<StepStats>), Box<dyn Error>> {
    if std::path::Path::new(source).is_file() {
        let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
        let report: NetReport = serde_json::from_str(&text)
            .map_err(|e| format!("{source}: not a `threelc serve --json` report: {e}"))?;
        let workers = report.result.config.workers as u64;
        let stats = report
            .result
            .trace
            .steps
            .iter()
            .map(|s| {
                let bits = s.push_bits_per_value(workers);
                StepStats {
                    step: s.step,
                    compression_ratio: if bits > 0.0 { 32.0 / bits } else { 0.0 },
                    residual_l2: s.residual_l2,
                }
            })
            .collect();
        Ok((report.node_traces, stats))
    } else {
        // Live mode: one snapshot of the server's own clock domain. Step
        // statistics only exist in the final report, so the step-level
        // checks have nothing to chew on here.
        let node = threelc_net::scrape_trace(source, Duration::from_secs(5))?;
        Ok((vec![node], Vec::new()))
    }
}
