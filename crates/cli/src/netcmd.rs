//! The `serve` and `worker` subcommands: the TCP parameter-server runtime
//! from `threelc-net`, driven from the command line.
//!
//! The server owns the full experiment configuration and distributes it in
//! the handshake, so a worker invocation needs nothing but an address and
//! a worker id.

use std::error::Error;
use std::fmt::Write as _;
use std::net::TcpListener;
use std::time::Duration;
use threelc::SparsityMultiplier;
use threelc_baselines::SchemeKind;
use threelc_distsim::{AggregateMode, Cluster, ExperimentConfig, PolicySpec};
use threelc_net::{
    model_crc32, run_worker, scrape_metrics, serve, FaultPlan, ServeOptions, WorkerOptions,
};
use threelc_obs::{Level, Snapshot};

type CliResult = Result<String, Box<dyn Error>>;

/// Rejects unknown flags and flags missing their value. Flags in `known`
/// take exactly one value; flags in `boolean` take none.
fn check_flags(args: &[String], known: &[&str], boolean: &[&str]) -> Result<(), Box<dyn Error>> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if boolean.contains(&a.as_str()) {
            continue;
        }
        if !known.contains(&a.as_str()) {
            return Err(format!("unknown argument `{a}`").into());
        }
        if it.next().is_none() {
            return Err(format!("{a} requires a value").into());
        }
    }
    Ok(())
}

/// The value following `name`, if the flag is present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses the value following `name`, if present.
fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
) -> Result<Option<T>, Box<dyn Error>> {
    match flag_value(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value `{v}` for {name}").into()),
    }
}

fn parse_scheme(name: &str, sparsity: f32) -> Result<SchemeKind, Box<dyn Error>> {
    match name {
        "float32" => Ok(SchemeKind::Float32),
        "fp16" => Ok(SchemeKind::Fp16),
        "int8" => Ok(SchemeKind::Int8),
        "3lc" => Ok(SchemeKind::three_lc(sparsity)),
        other => Err(format!("unknown scheme `{other}` (expected float32|fp16|int8|3lc)").into()),
    }
}

/// The experiment-shape flags shared by `serve` and `simulate`.
const CONFIG_FLAGS: &[&str] = &[
    "--workers",
    "--steps",
    "--scheme",
    "--sparsity",
    "--seed",
    "--width",
    "--blocks",
    "--batch",
    "--eval-every",
    "--policy",
    "--aggregate",
];

/// Builds the experiment configuration from the shared [`CONFIG_FLAGS`],
/// so `serve` and `simulate` agree byte-for-byte on what a given command
/// line trains.
fn config_from_flags(args: &[String]) -> Result<ExperimentConfig, Box<dyn Error>> {
    let sparsity: f32 = parse_flag(args, "--sparsity")?.unwrap_or(1.0);
    SparsityMultiplier::new(sparsity).map_err(|_| "sparsity must be in [1.0, 2.0)")?;
    let scheme = match flag_value(args, "--scheme") {
        Some(name) => parse_scheme(name, sparsity)?,
        None => SchemeKind::three_lc(sparsity),
    };
    let mut config = ExperimentConfig::for_scheme(scheme);
    if let Some(v) = parse_flag(args, "--workers")? {
        config.workers = v;
    }
    if let Some(v) = parse_flag(args, "--steps")? {
        config.total_steps = v;
    }
    if let Some(v) = parse_flag(args, "--seed")? {
        config.seed = v;
    }
    if let Some(v) = parse_flag(args, "--width")? {
        config.model_width = v;
    }
    if let Some(v) = parse_flag(args, "--blocks")? {
        config.model_blocks = v;
    }
    if let Some(v) = parse_flag(args, "--batch")? {
        config.batch_per_worker = v;
    }
    if let Some(v) = parse_flag(args, "--eval-every")? {
        config.eval_every = v;
    }
    if let Some(spec) = flag_value(args, "--policy") {
        config.policy = PolicySpec::parse(spec).map_err(|e| format!("--policy: {e}"))?;
    }
    if let Some(name) = flag_value(args, "--aggregate") {
        config.aggregate = AggregateMode::parse(name)
            .ok_or_else(|| format!("--aggregate: unknown mode `{name}` (f32|exact|compressed)"))?;
    }
    Ok(config)
}

/// `threelc serve`: bind, run a full experiment as the parameter server,
/// and report (optionally dumping the full JSON report).
pub fn serve_cmd(args: &[String]) -> CliResult {
    const FLAGS: &[&str] = &[
        "--addr",
        "--workers",
        "--steps",
        "--scheme",
        "--sparsity",
        "--seed",
        "--width",
        "--blocks",
        "--batch",
        "--eval-every",
        "--policy",
        "--aggregate",
        "--threads",
        "--json",
        "--rejoin-timeout",
        "--max-rejoins",
        "--flight",
    ];
    check_flags(args, FLAGS, &[])?;
    let addr =
        flag_value(args, "--addr").ok_or("--addr is required (e.g. --addr 127.0.0.1:7171)")?;
    let config = config_from_flags(args)?;

    let mut opts = ServeOptions {
        threads: parse_flag(args, "--threads")?.unwrap_or(1),
        ..ServeOptions::default()
    };
    if let Some(secs) = parse_flag::<u64>(args, "--rejoin-timeout")? {
        opts.rejoin_timeout = Duration::from_secs(secs);
    }
    if let Some(v) = parse_flag(args, "--max-rejoins")? {
        opts.max_rejoins = v;
    }
    // The flight recorder dumps to an explicit --flight path, or rides
    // along with --json as `<report>.flight.json`. Without either flag
    // there is nowhere sensible to write, so no dump is armed.
    opts.flight = match (flag_value(args, "--flight"), flag_value(args, "--json")) {
        (Some(path), _) => Some(path.to_string()),
        (None, Some(json)) => {
            let stem = json.strip_suffix(".json").unwrap_or(json);
            Some(format!("{stem}.flight.json"))
        }
        (None, None) => None,
    };
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener.local_addr()?;
    let result = serve(&listener, &config, &opts);

    // Leave the final metrics state in the structured log (when one is
    // enabled), so `threelc metrics --from <jsonl>` can render the run
    // offline after the server is gone. Deliberately before the `?`: an
    // aborted run is exactly when the post-mortem snapshot matters most.
    if threelc_obs::log_enabled(Level::Info) {
        let snapshot = serde_json::to_string(&threelc_obs::global().snapshot())?;
        threelc_obs::emit(Level::Info, "metrics.snapshot", &[("snapshot", snapshot)]);
    }
    let report = result?;

    if let Some(path) = flag_value(args, "--json") {
        let json = serde_json::to_string(&report)?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }

    let result = &report.result;
    let (push, pull, raw) = result
        .trace
        .steps
        .iter()
        .fold((0u64, 0u64, 0u64), |acc, s| {
            (
                acc.0 + s.push_bytes,
                acc.1 + s.pull_bytes,
                acc.2 + s.raw_bytes,
            )
        });
    let mut out = String::new();
    writeln!(
        out,
        "served {} worker(s) for {} steps on {bound} [{}]",
        config.workers, config.total_steps, result.scheme_label
    )?;
    writeln!(
        out,
        "final eval: loss {:.4}, accuracy {:.2}%",
        result.final_eval.loss,
        result.final_eval.accuracy * 100.0
    )?;
    writeln!(out, "final model crc32: {:08x}", report.final_model_crc32)?;
    write_policy_summary(&mut out, &result.trace.policy)?;
    if report.faults.disconnects > 0 || report.faults.rejoins > 0 {
        writeln!(
            out,
            "faults: {} disconnect(s), {} rejoin(s)",
            report.faults.disconnects, report.faults.rejoins
        )?;
        for e in &report.faults.events {
            writeln!(
                out,
                "fault [{}] step {} worker {}: {}",
                e.kind, e.step, e.worker, e.detail
            )?;
        }
    }
    writeln!(
        out,
        "traffic: push {push} B, pull {pull} B, raw {raw} B (payloads, all workers)"
    )?;
    for conn in &report.connections {
        let c = &conn.counters;
        writeln!(
            out,
            "worker {} @ {}: in {} B / {} frames, out {} B / {} frames, codec {:.3}s, socket {:.3}s",
            conn.worker,
            conn.peer,
            c.bytes_in,
            c.frames_in,
            c.bytes_out,
            c.frames_out,
            c.codec_seconds,
            c.socket_seconds
        )?;
    }
    for a in report.anomalies.iter().chain(&result.trace.anomalies) {
        writeln!(out, "anomaly [{}]: {}", a.kind, a.detail)?;
    }
    if !report.node_traces.is_empty() {
        writeln!(
            out,
            "collected {} node trace(s); render with `threelc trace <report.json>`",
            report.node_traces.len()
        )?;
    }
    Ok(out)
}

/// One line summarizing an adaptive run's decision sequence: the label,
/// the tensor-0 multiplier per step (the sequence CI asserts is
/// non-constant), and the count of distinct multipliers. Prints nothing
/// for a static run.
fn write_policy_summary(
    out: &mut String,
    policy: &threelc_distsim::PolicyTrace,
) -> Result<(), Box<dyn Error>> {
    if policy.records.is_empty() {
        return Ok(());
    }
    let mults: Vec<String> = policy
        .records
        .iter()
        .filter(|r| r.tensor == 0)
        .map(|r| format!("{}", r.s))
        .collect();
    let distinct: std::collections::BTreeSet<u32> =
        policy.records.iter().map(|r| r.s.to_bits()).collect();
    writeln!(
        out,
        "policy [{}]: {} distinct multiplier(s); tensor-0 sequence: {}",
        policy.label,
        distinct.len(),
        mults.join(" ")
    )?;
    Ok(())
}

/// `threelc metrics <addr>`: scrape a live metrics snapshot from a
/// serving parameter server and print it (text by default, `--json` for
/// the raw snapshot, `--prom` for OpenMetrics/Prometheus text
/// exposition). `--from <file>` instead renders the last
/// `metrics.snapshot` event recorded in a `--log-json` file — or the
/// final registry snapshot embedded in a `serve --json` report — so a
/// finished run stays inspectable (and scrapable) offline. `--watch
/// SECS` keeps re-scraping every interval and prints what changed since
/// the previous snapshot, exiting cleanly once the server goes away.
pub fn metrics_cmd(args: &[String]) -> CliResult {
    let mut addr: Option<&str> = None;
    let mut from: Option<&str> = None;
    let mut json = false;
    let mut prom = false;
    let mut watch: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--prom" => prom = true,
            "--from" => {
                from = Some(
                    it.next()
                        .ok_or("--from requires a JSONL file path")?
                        .as_str(),
                );
            }
            "--watch" => {
                let v = it.next().ok_or("--watch requires an interval in seconds")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid value `{v}` for --watch"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--watch interval must be positive".into());
                }
                watch = Some(secs);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`").into());
            }
            other => {
                if addr.replace(other).is_some() {
                    return Err("metrics takes exactly one server address".into());
                }
            }
        }
    }
    if json && prom {
        return Err("--json and --prom are mutually exclusive".into());
    }
    if let Some(interval) = watch {
        if prom {
            return Err("--watch prints text or --json diffs, not --prom".into());
        }
        let (Some(addr), None) = (addr, from) else {
            return Err("--watch needs a live server address (not --from)".into());
        };
        return watch_metrics(addr, interval, json);
    }
    let snapshot = match (addr, from) {
        (Some(_), Some(_)) => {
            return Err("pass either a server address or --from <jsonl>, not both".into());
        }
        (Some(addr), None) => scrape_metrics(addr, Duration::from_secs(5))?,
        (None, Some(path)) => snapshot_from_file(path)?,
        (None, None) => {
            return Err("metrics requires a server address (e.g. threelc metrics \
                 127.0.0.1:7171) or --from <jsonl>"
                .into());
        }
    };
    if json {
        let mut out = serde_json::to_string_pretty(&snapshot)?;
        out.push('\n');
        Ok(out)
    } else if prom {
        Ok(threelc_obs::render_prometheus(&snapshot))
    } else {
        Ok(snapshot.render_text())
    }
}

/// The `--watch` loop: scrape every `interval` seconds and print the diff
/// since the previous snapshot (or the full snapshot with `--json`). The
/// server disappearing after at least one successful scrape is the normal
/// way a watched run ends, so it exits cleanly.
fn watch_metrics(addr: &str, interval: f64, json: bool) -> CliResult {
    let mut prev: Option<Snapshot> = None;
    let mut frames = 0u64;
    loop {
        match scrape_metrics(addr, Duration::from_secs(5)) {
            Ok(snap) => {
                if json {
                    println!("{}", serde_json::to_string(&snap)?);
                } else if let Some(prev) = &prev {
                    print!("{}", diff_snapshots(prev, &snap));
                } else {
                    print!("{}", snap.render_text());
                }
                println!("---");
                prev = Some(snap);
                frames += 1;
            }
            Err(e) if frames > 0 => {
                return Ok(format!("server went away after {frames} scrape(s): {e}\n"));
            }
            Err(e) => return Err(e.into()),
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// What changed between two snapshots: counter increments, gauge moves,
/// and new histogram samples. Metrics absent from `prev` (registered
/// mid-run) diff against zero.
fn diff_snapshots(prev: &Snapshot, curr: &Snapshot) -> String {
    let mut out = String::new();
    for c in &curr.counters {
        let before = prev.counter(&c.name).unwrap_or(0);
        if c.value != before {
            let _ = writeln!(out, "{} +{} = {}", c.name, c.value - before, c.value);
        }
    }
    for g in &curr.gauges {
        let before = prev.gauge(&g.name);
        if before != Some(g.value) {
            let _ = writeln!(out, "{} = {}", g.name, g.value);
        }
    }
    for h in &curr.histograms {
        let before = prev.histogram(&h.name).map_or(0, |s| s.count);
        if h.hist.count != before {
            let _ = writeln!(
                out,
                "{} +{} sample(s) = {}",
                h.name,
                h.hist.count - before,
                h.hist.count
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no change)\n");
    }
    out
}

/// Loads a snapshot from an offline `--from` file: a `serve --json`
/// report (the final registry snapshot is embedded as `metrics`) or a
/// structured `--log-json` JSONL file. A report is a single JSON
/// document, a log is one event per line, so the parse disambiguates.
fn snapshot_from_file(path: &str) -> Result<Snapshot, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if let Ok(report) = serde_json::from_str::<threelc_net::NetReport>(&text) {
        return Ok(report.metrics);
    }
    snapshot_from_log(path, &text)
}

/// Reconstructs the last `metrics.snapshot` event from a structured
/// `--log-json` file. The server writes one at the end of every run (at
/// `info` level, which `--log-json` enables by default).
fn snapshot_from_log(path: &str, text: &str) -> Result<Snapshot, Box<dyn Error>> {
    let mut snapshot: Option<Snapshot> = None;
    let mut events = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let event: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{lineno}: not a JSONL event: {e}"))?;
        events += 1;
        if event.get("event").and_then(|e| e.as_str()) != Some("metrics.snapshot") {
            continue;
        }
        let payload = event
            .get("snapshot")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("{path}:{lineno}: metrics.snapshot has no snapshot field"))?;
        snapshot = Some(
            serde_json::from_str(payload)
                .map_err(|e| format!("{path}:{lineno}: bad snapshot payload: {e}"))?,
        );
    }
    snapshot.ok_or_else(|| {
        format!(
            "{path}: no metrics.snapshot event among {events} log line(s); \
             produce one with `threelc serve --log-json {path} ...`"
        )
        .into()
    })
}

/// `threelc simulate`: run the same experiment a `serve`/`worker` pair
/// would, entirely in-process, and print the same final-model fingerprint
/// line. The chaos smoke in CI compares this line against a faulted
/// networked run's — bit-identical recovery, checked from the shell.
pub fn simulate_cmd(args: &[String]) -> CliResult {
    let mut flags: Vec<&str> = CONFIG_FLAGS.to_vec();
    flags.push("--threads");
    check_flags(args, &flags, &[])?;
    let config = config_from_flags(args)?;

    let mut cluster = Cluster::new(config);
    cluster.set_threads(parse_flag(args, "--threads")?.unwrap_or(1));
    for _ in 0..config.total_steps {
        cluster.step();
    }
    let eval = cluster.evaluate();
    let mut out = String::new();
    writeln!(
        out,
        "simulated {} worker(s) for {} steps [{}]",
        config.workers,
        config.total_steps,
        config.scheme.label()
    )?;
    writeln!(
        out,
        "final eval: loss {:.4}, accuracy {:.2}%",
        eval.loss,
        eval.accuracy * 100.0
    )?;
    writeln!(
        out,
        "final model crc32: {:08x}",
        model_crc32(cluster.global_model())
    )?;
    write_policy_summary(&mut out, cluster.policy_trace())?;
    Ok(out)
}

/// `threelc worker`: join a serving parameter server and train.
pub fn worker_cmd(args: &[String]) -> CliResult {
    const FLAGS: &[&str] = &[
        "--addr",
        "--id",
        "--threads",
        "--max-rejoins",
        "--inject-fault",
        "--policy",
        "--aggregate",
    ];
    const BOOL_FLAGS: &[&str] = &["--rejoin"];
    check_flags(args, FLAGS, BOOL_FLAGS)?;
    let addr =
        flag_value(args, "--addr").ok_or("--addr is required (e.g. --addr 127.0.0.1:7171)")?;
    let id: u16 = parse_flag(args, "--id")?.ok_or("--id is required (0-based worker id)")?;

    let mut wopts = WorkerOptions::new(addr, id);
    wopts.threads = parse_flag(args, "--threads")?.unwrap_or(1);
    if let Some(v) = parse_flag(args, "--max-rejoins")? {
        wopts.max_rejoins = v;
    }
    // The server's HelloAck config is authoritative for the policy; the
    // flag is accepted (and validated) so launch scripts can pass the
    // same arguments to every role.
    if let Some(spec) = flag_value(args, "--policy") {
        PolicySpec::parse(spec).map_err(|e| format!("--policy: {e}"))?;
    }
    if let Some(name) = flag_value(args, "--aggregate") {
        AggregateMode::parse(name)
            .ok_or_else(|| format!("--aggregate: unknown mode `{name}` (f32|exact|compressed)"))?;
    }
    wopts.start_rejoined = args.iter().any(|a| a == "--rejoin");
    wopts.fault = match flag_value(args, "--inject-fault") {
        Some(spec) => Some(FaultPlan::parse(spec)?),
        None => FaultPlan::from_env()?,
    };
    let outcome = run_worker(&wopts)?;
    let c = &outcome.counters;
    let mut out = String::new();
    writeln!(
        out,
        "worker {id} finished {} steps against {addr} [{}]",
        outcome.steps,
        outcome.config.scheme.label()
    )?;
    if outcome.rejoins > 0 {
        writeln!(
            out,
            "rejoined {} time(s) after losing the server",
            outcome.rejoins
        )?;
    }
    writeln!(
        out,
        "traffic: in {} B / {} frames, out {} B / {} frames, {} retries",
        c.bytes_in, c.frames_in, c.bytes_out, c.frames_out, c.retries
    )?;
    writeln!(
        out,
        "time: codec {:.3}s, socket {:.3}s",
        c.codec_seconds, c.socket_seconds
    )?;
    Ok(out)
}
