//! The `top` subcommand: a live terminal dashboard over the server's
//! time-series store.
//!
//! Polls the metrics side-door with `SeriesRequest` frames (the same
//! non-intrusive path `threelc metrics` uses), so watching a run costs
//! the server one store snapshot per interval and never touches worker
//! connections. One row per worker: last recorded step, achieved push
//! compression ratio, wire throughput, rejoin count, step latency with a
//! straggler flag (the watchdog's threshold), and an ASCII sparkline of
//! recent wire bytes. `--once` renders a single frame and exits (the CI
//! smoke), `--json` dumps the raw store instead of the dashboard.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Duration;
use threelc_net::scrape_series;
use threelc_obs::timeseries::{
    RunSeries, Series, S_BARRIER_WAIT, S_RATIO, S_REJOINS, S_STEP_SECONDS, S_WIRE_BYTES,
};
use threelc_obs::{watchdog, WatchdogConfig};

type CliResult = Result<String, Box<dyn Error>>;

/// Seconds between polls unless `--interval` says otherwise.
const DEFAULT_INTERVAL: f64 = 2.0;
/// Points per sparkline.
const SPARK_POINTS: usize = 16;
/// Sparkline glyphs, lowest to highest (pure ASCII so any terminal and
/// any CI log renders them).
const SPARK_GLYPHS: &[u8] = b" .:-=+*#%@";
/// Barrier lateness (seconds) below which the bottleneck column shows
/// `-`. Matches the analyzer's `blame_min_seconds` floor so the live
/// column and `threelc analyze` flag the same worker.
const BOTTLENECK_FLOOR_SECONDS: f64 = 0.1;

/// `threelc top <addr> [--interval SECS] [--once] [--json]`.
pub fn top_cmd(args: &[String]) -> CliResult {
    let mut addr: Option<&str> = None;
    let mut interval = DEFAULT_INTERVAL;
    let mut once = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => once = true,
            "--json" => json = true,
            "--interval" => {
                let v = it.next().ok_or("--interval requires seconds")?;
                interval = v
                    .parse()
                    .map_err(|_| format!("invalid value `{v}` for --interval"))?;
                if !interval.is_finite() || interval <= 0.0 {
                    return Err("--interval must be positive".into());
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`").into());
            }
            other => {
                if addr.replace(other).is_some() {
                    return Err("top takes exactly one server address".into());
                }
            }
        }
    }
    let addr = addr.ok_or("top requires a server address (e.g. threelc top 127.0.0.1:7171)")?;

    if once {
        let store = scrape_series(addr, Duration::from_secs(5))?;
        return render_output(&store, json);
    }
    // Watch mode: one frame per interval until the server goes away (the
    // run finished or aborted), which is a clean exit, not an error.
    let mut frames = 0u64;
    loop {
        match scrape_series(addr, Duration::from_secs(5)) {
            Ok(store) => {
                print!("{}", render_output(&store, json)?);
                println!("---");
                frames += 1;
            }
            Err(e) if frames > 0 => {
                return Ok(format!("server went away after {frames} frame(s): {e}\n"));
            }
            Err(e) => return Err(e.into()),
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

fn render_output(store: &RunSeries, json: bool) -> CliResult {
    if json {
        let mut out = serde_json::to_string_pretty(store)?;
        out.push('\n');
        Ok(out)
    } else {
        Ok(render_dashboard(store))
    }
}

/// The most recent value of a worker's named series, if any.
fn last_value(series: Option<&Series>) -> Option<f64> {
    series.and_then(|s| s.last()).map(|p| p.value)
}

/// Renders one dashboard frame: a run-level headline plus one row per
/// worker. Every worker gets a row even before its first step lands.
pub fn render_dashboard(store: &RunSeries) -> String {
    let mut out = String::new();
    let run_ratio = last_value(store.run_series(S_RATIO)).unwrap_or(0.0);
    let run_bytes = last_value(store.run_series(S_WIRE_BYTES)).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "run: {} step(s) recorded, {} worker(s), last step {} wire, ratio {:.1}x",
        store.steps_recorded,
        store.workers.len(),
        human_bytes(run_bytes),
        run_ratio,
    );

    // Straggler detection over the latest step latencies, using the same
    // thresholds the end-of-run watchdog applies to trace phases.
    let latencies: Vec<f64> = store
        .workers
        .iter()
        .map(|w| last_value(w.series(S_STEP_SECONDS)).unwrap_or(0.0))
        .collect();
    let stragglers = watchdog::straggler_workers(&latencies, &WatchdogConfig::default());

    let _ = writeln!(
        out,
        "{:<8} {:<10} {:>8} {:>8} {:>12} {:>8} {:>10} {:>12}  wire trend",
        "worker", "state", "step", "ratio", "bytes/s", "rejoins", "latency", "bottleneck"
    );
    for (i, w) in store.workers.iter().enumerate() {
        let wire = w.series(S_WIRE_BYTES);
        let step = wire
            .and_then(|s| s.last())
            .map(|p| p.step.to_string())
            .unwrap_or_else(|| "-".into());
        let ratio = last_value(w.series(S_RATIO)).unwrap_or(0.0);
        let rejoins = last_value(w.series(S_REJOINS)).unwrap_or(0.0);
        let latency = latencies.get(i).copied().unwrap_or(0.0);
        let bytes = last_value(wire).unwrap_or(0.0);
        let rate = if latency > 0.0 { bytes / latency } else { 0.0 };
        let straggling = stragglers.get(i).copied().unwrap_or(false);
        let state = if wire.and_then(|s| s.last()).is_none() {
            "waiting"
        } else if straggling {
            "straggler"
        } else {
            "ok"
        };
        // How late this worker's push reached the barrier relative to the
        // fastest peer — the live proxy for critical-path blame (`threelc
        // analyze` attributes exactly this time to the late worker).
        let behind = last_value(w.series(S_BARRIER_WAIT)).unwrap_or(0.0);
        let bottleneck = if behind >= BOTTLENECK_FLOOR_SECONDS {
            format!("net +{:.0}ms", behind * 1e3)
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "worker {i:<1} {state:<10} {step:>8} {ratio:>7.1}x {:>12} {rejoins:>8.0} {:>9.1}ms {bottleneck:>12}  |{}|",
            human_bytes(rate),
            latency * 1e3,
            sparkline(wire, SPARK_POINTS),
        );
    }
    out
}

/// An ASCII sparkline over the series' most recent exact points,
/// min-max normalized (a flat series renders as all-middle glyphs).
fn sparkline(series: Option<&Series>, n: usize) -> String {
    let Some(series) = series else {
        return String::new();
    };
    let points = series.recent(n);
    if points.is_empty() {
        return String::new();
    }
    let min = points.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
    let max = points
        .iter()
        .map(|p| p.value)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    let top = (SPARK_GLYPHS.len() - 1) as f64;
    points
        .iter()
        .map(|p| {
            let level = if span > 0.0 {
                ((p.value - min) / span * top).round() as usize
            } else {
                SPARK_GLYPHS.len() / 2
            };
            SPARK_GLYPHS[level.min(SPARK_GLYPHS.len() - 1)] as char
        })
        .collect()
}

/// `1.5 KB`-style rendering without pulling in a dependency.
fn human_bytes(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1} GB", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1} MB", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} KB", v / 1e3)
    } else {
        format!("{v:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_obs::{RunRecorder, WorkerDelta};

    fn store_with_steps(workers: usize, steps: u64) -> RunSeries {
        let mut r = RunRecorder::new(workers);
        for step in 0..steps {
            let deltas: Vec<WorkerDelta> = (0..workers)
                .map(|w| WorkerDelta {
                    worker: w,
                    wire_bytes: 1000 + step * 10 + w as u64,
                    ratio: 15.9,
                    residual_l2: 0.2,
                    loss: 1.0,
                    multiplier: 1.0,
                    rejoins: 0,
                    // Worker 1 is 10x slower than its peers: a straggler.
                    step_seconds: if w == 1 { 0.1 } else { 0.01 },
                    barrier_wait_seconds: if w == 1 { 0.25 } else { 0.0 },
                })
                .collect();
            r.record_step(step, &deltas);
        }
        r.snapshot()
    }

    #[test]
    fn dashboard_renders_one_row_per_worker() {
        let out = render_dashboard(&store_with_steps(3, 5));
        assert!(out.contains("3 worker(s)"), "{out}");
        for w in 0..3 {
            assert!(
                out.contains(&format!("worker {w}")),
                "missing row {w}: {out}"
            );
        }
        assert!(out.contains("15.9x"), "{out}");
    }

    #[test]
    fn straggling_worker_is_flagged() {
        let out = render_dashboard(&store_with_steps(3, 4));
        let rows: Vec<&str> = out
            .lines()
            .filter(|l| {
                l.strip_prefix("worker ")
                    .is_some_and(|r| r.starts_with(|c: char| c.is_ascii_digit()))
            })
            .collect();
        assert!(rows[1].contains("straggler"), "{out}");
        assert!(rows[0].contains("ok"), "{out}");
        assert!(rows[2].contains("ok"), "{out}");
    }

    #[test]
    fn barrier_lateness_surfaces_in_the_bottleneck_column() {
        let out = render_dashboard(&store_with_steps(3, 4));
        assert!(out.contains("bottleneck"), "{out}");
        let rows: Vec<&str> = out
            .lines()
            .filter(|l| {
                l.strip_prefix("worker ")
                    .is_some_and(|r| r.starts_with(|c: char| c.is_ascii_digit()))
            })
            .collect();
        // Worker 1 arrived 250 ms behind the fastest peer; its row names
        // the blame, its peers stay clean.
        assert!(rows[1].contains("net +250ms"), "{out}");
        assert!(!rows[0].contains("net +"), "{out}");
        assert!(!rows[2].contains("net +"), "{out}");
    }

    #[test]
    fn empty_store_still_renders_every_worker_as_waiting() {
        let out = render_dashboard(&RunRecorder::new(2).snapshot());
        assert!(out.contains("0 step(s) recorded"), "{out}");
        assert!(out.contains("worker 0"), "{out}");
        assert!(out.contains("worker 1"), "{out}");
        assert!(out.contains("waiting"), "{out}");
    }

    #[test]
    fn sparkline_tracks_the_trend() {
        let mut s = Series::new("x");
        for step in 0..8 {
            s.push(step, step as f64);
        }
        let line = sparkline(Some(&s), 8);
        assert_eq!(line.len(), 8);
        assert!(line.starts_with(' '), "lowest value maps low: {line:?}");
        assert!(line.ends_with('@'), "highest value maps high: {line:?}");
        // A flat series renders mid-level glyphs, not a panic.
        let mut flat = Series::new("y");
        flat.push(0, 5.0);
        flat.push(1, 5.0);
        assert_eq!(sparkline(Some(&flat), 8).len(), 2);
    }

    #[test]
    fn human_bytes_picks_sane_units() {
        assert_eq!(human_bytes(10.0), "10 B");
        assert_eq!(human_bytes(2_500.0), "2.5 KB");
        assert_eq!(human_bytes(3_100_000.0), "3.1 MB");
        assert_eq!(human_bytes(7_200_000_000.0), "7.2 GB");
    }

    #[test]
    fn top_cmd_rejects_bad_arguments() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(top_cmd(&args(&[])).is_err());
        assert!(top_cmd(&args(&["a:1", "b:2"])).is_err());
        assert!(top_cmd(&args(&["--bogus", "a:1"])).is_err());
        assert!(top_cmd(&args(&["a:1", "--interval", "nope"])).is_err());
        assert!(top_cmd(&args(&["a:1", "--interval", "0"])).is_err());
    }
}
