//! `threelc` — command-line 3LC compression for raw `f32` tensor files.
//!
//! ```text
//! threelc compress   <input.f32> <output.3lc> [--sparsity S] [--no-zre]
//! threelc decompress <input.3lc> <output.f32>
//! threelc inspect    <input.3lc>
//! threelc stats      <input.f32> [--sparsity S]
//! threelc serve      --addr A [--workers N] [--steps N] [...]
//! threelc worker     --addr A --id N
//! threelc metrics    <addr> [--json|--prom] [--watch SECS]
//! threelc metrics    --from <log.jsonl|report.json> [--json|--prom]
//! threelc top        <addr> [--interval SECS] [--once] [--json]
//! threelc trace      <report.json|flight.json|addr> [--chrome out.json] [--check]
//! threelc analyze    <report.json|flight.json|addr> [--check] [--expect-blame N:P]
//! ```
//!
//! Every command accepts a global `--log-json <path>` flag that appends
//! structured JSONL events to a file; `THREELC_LOG` selects the level.
//!
//! Input tensors are flat little-endian `f32` files (the natural dump
//! format of most numeric toolchains). The `.3lc` container prepends a
//! 16-byte file header (magic, element count) to the wire payload from
//! `threelc::ThreeLcCompressor` so files are self-describing.

use std::process::ExitCode;

mod analyzecmd;
mod cli;
mod netcmd;
mod topcmd;
mod tracecmd;

/// Strips the global `--log-json <path>` flag (valid before or after the
/// subcommand) and, when present, routes structured events to that file.
/// `THREELC_LOG` still selects the level; unset, the flag implies `info`
/// so asking for a log file is never a silent no-op.
fn apply_log_flag(mut args: Vec<String>) -> Result<Vec<String>, String> {
    let Some(i) = args.iter().position(|a| a == "--log-json") else {
        return Ok(args);
    };
    if i + 1 >= args.len() {
        return Err("--log-json requires a file path".into());
    }
    let path = args.remove(i + 1);
    args.remove(i);
    if std::env::var_os("THREELC_LOG").is_none() {
        threelc_obs::set_level(threelc_obs::Level::Info);
    }
    threelc_obs::set_log_file(&path).map_err(|e| format!("--log-json {path}: {e}"))?;
    Ok(args)
}

fn main() -> ExitCode {
    let args = match apply_log_flag(std::env::args().skip(1).collect()) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match cli::run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn log_flag_is_stripped_and_routes_events_to_the_file() {
        // Missing path is a clean error.
        assert!(super::apply_log_flag(vec!["inspect".into(), "--log-json".into()]).is_err());

        let path = std::env::temp_dir().join(format!("threelc-log-{}.jsonl", std::process::id()));
        let args = vec![
            "--log-json".into(),
            path.to_str().expect("utf-8 path").into(),
            "stats".into(),
        ];
        let rest = super::apply_log_flag(args).expect("valid log flag");
        assert_eq!(rest, vec!["stats".to_string()]);

        // The flag implies info level when THREELC_LOG is unset, so this
        // event must land in the file.
        threelc_obs::event!(threelc_obs::Level::Info, "cli.log_flag_test", ok = true);
        let contents = std::fs::read_to_string(&path).expect("log file");
        assert!(contents.contains("cli.log_flag_test"), "got: {contents}");
        let _ = std::fs::remove_file(&path);
    }
}
