//! `threelc` — command-line 3LC compression for raw `f32` tensor files.
//!
//! ```text
//! threelc compress   <input.f32> <output.3lc> [--sparsity S] [--no-zre]
//! threelc decompress <input.3lc> <output.f32>
//! threelc inspect    <input.3lc>
//! threelc stats      <input.f32> [--sparsity S]
//! threelc serve      --addr A [--workers N] [--steps N] [...]
//! threelc worker     --addr A --id N
//! ```
//!
//! Input tensors are flat little-endian `f32` files (the natural dump
//! format of most numeric toolchains). The `.3lc` container prepends a
//! 16-byte file header (magic, element count) to the wire payload from
//! `threelc::ThreeLcCompressor` so files are self-describing.

use std::process::ExitCode;

mod cli;
mod netcmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
