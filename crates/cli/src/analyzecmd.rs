//! The `analyze` subcommand: critical-path reconstruction and causal
//! bottleneck attribution over a traced run.
//!
//! Reads the same sources `threelc trace` does — a `threelc serve --json`
//! report, a `.flight.json` post-mortem dump, or a live server address —
//! rebuilds the clock-aligned timeline, and runs the critical-path
//! analyzer from `threelc_obs::critical`: per-step dependency chains,
//! conserved `{node × phase}` blame buckets, first-order what-if
//! projections, and bottleneck flags. A report whose spans were stripped
//! (but which a traced server wrote) still renders via the embedded
//! `analysis` section.
//!
//! Two gates make the attribution falsifiable from CI:
//!
//! - `--expect-blame NODE:PHASE` exits nonzero unless that lane/phase
//!   tops the blame ledger *and* is flagged as a bottleneck. The chaos
//!   smoke injects `delay@N:MS` on a known worker and requires
//!   `--expect-blame workerN:network` to pass — ground truth for the
//!   causal attribution.
//! - `--check` exits nonzero when the per-step attribution fails to
//!   conserve (Σ buckets drifts from measured wall time) or when any
//!   bottleneck is flagged — the inverse gate for clean runs.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Duration;
use threelc_net::NetReport;
use threelc_obs::{AnalysisConfig, FlightDump, MergedTimeline, RunAnalysis};

type CliResult = Result<String, Box<dyn Error>>;

/// Default row cap of the per-step section (`--steps 0` = all).
const DEFAULT_MAX_STEPS: usize = 10;

/// Conservation residual above which `--check` fails. The tiler is exact
/// by construction, so anything past float noise means a real bug; 5%
/// leaves headroom for reports round-tripped through lossy tooling.
const MAX_CONSERVATION_ERROR: f64 = 0.05;

/// `threelc analyze <report.json|flight.json|addr> [--json] [--steps N]
/// [--check] [--expect-blame NODE:PHASE]`.
pub fn analyze_cmd(args: &[String]) -> CliResult {
    let mut source: Option<&str> = None;
    let mut json = false;
    let mut check = false;
    let mut expect: Option<(&str, &str)> = None;
    let mut max_steps = DEFAULT_MAX_STEPS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--check" => check = true,
            "--steps" => {
                let v = it.next().ok_or("--steps requires a value")?;
                max_steps = v
                    .parse()
                    .map_err(|_| format!("invalid value `{v}` for --steps"))?;
            }
            "--expect-blame" => {
                let v = it.next().ok_or("--expect-blame requires NODE:PHASE")?;
                expect = Some(v.split_once(':').ok_or_else(|| {
                    format!(
                        "invalid --expect-blame `{v}` (expected NODE:PHASE, e.g. worker1:network)"
                    )
                })?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`").into());
            }
            other => {
                if source.replace(other).is_some() {
                    return Err("analyze takes exactly one report file or server address".into());
                }
            }
        }
    }
    let source = source
        .ok_or("analyze requires a `threelc serve --json` report file or a live server address")?;

    let analysis = load_analysis(source)?;
    let mut out = if json {
        let mut s = serde_json::to_string_pretty(&analysis)?;
        s.push('\n');
        s
    } else {
        analysis.render_text(max_steps)
    };

    if let Some((node, phase)) = expect {
        let top = analysis
            .top()
            .ok_or("no attribution buckets; nothing to blame")?;
        if top.node != node || top.phase != phase {
            return Err(format!(
                "blame check failed: expected {node}/{phase} to top the ledger, got {}/{} \
                 ({:.3} s)",
                top.node, top.phase, top.seconds
            )
            .into());
        }
        if !analysis
            .bottlenecks
            .iter()
            .any(|b| b.node == node && b.phase == phase)
        {
            return Err(format!(
                "blame check failed: {node}/{phase} tops the ledger ({:.3} s) but is not \
                 flagged as a bottleneck",
                top.seconds
            )
            .into());
        }
        if !json {
            writeln!(
                out,
                "blame check passed: {node}/{phase} tops the ledger ({:.3} s) and is flagged",
                top.seconds
            )?;
        }
    }

    if check {
        if analysis.conservation_error > MAX_CONSERVATION_ERROR {
            return Err(format!(
                "analyze check failed: attribution not conserved (residual {:.3e} > {MAX_CONSERVATION_ERROR})",
                analysis.conservation_error
            )
            .into());
        }
        if !analysis.bottlenecks.is_empty() {
            let mut msg = format!(
                "analyze check failed: {} bottleneck(s) flagged\n",
                analysis.bottlenecks.len()
            );
            for b in &analysis.bottlenecks {
                let _ = writeln!(msg, "  [{}/{}] {}", b.node, b.phase, b.detail);
            }
            return Err(msg.into());
        }
        if !json {
            writeln!(
                out,
                "analyze check passed: attribution conserved (residual {:.2e}), no bottlenecks",
                analysis.conservation_error
            )?;
        }
    }
    Ok(out)
}

/// Loads (or rebuilds) the run analysis from a report file, a flight
/// dump, or a live server. Spans win over an embedded analysis — the
/// rebuild reflects the analyzer that ships with this binary, not the
/// one the server ran.
fn load_analysis(source: &str) -> Result<RunAnalysis, Box<dyn Error>> {
    let cfg = AnalysisConfig::default();
    if std::path::Path::new(source).is_file() {
        let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
        if let Ok(dump) = FlightDump::from_json(&text) {
            if dump.spans.iter().all(|n| n.spans.is_empty()) {
                return Err(format!(
                    "{source}: flight dump has no spans; dump a THREELC_TRACE=1 run"
                )
                .into());
            }
            return Ok(RunAnalysis::build(
                &MergedTimeline::build(&dump.spans),
                &cfg,
            ));
        }
        let report: NetReport = serde_json::from_str(&text).map_err(|e| {
            format!("{source}: not a `threelc serve --json` report or flight dump: {e}")
        })?;
        let span_count: usize = report.node_traces.iter().map(|n| n.spans.len()).sum();
        if span_count > 0 {
            return Ok(RunAnalysis::build(
                &MergedTimeline::build(&report.node_traces),
                &cfg,
            ));
        }
        if let Some(analysis) = report.analysis {
            return Ok(analysis);
        }
        Err(format!(
            "{source}: no trace data and no embedded analysis; \
             run the server and workers with THREELC_TRACE=1"
        )
        .into())
    } else {
        // Live mode: one snapshot of the server's own clock domain.
        let node = threelc_net::scrape_trace(source, Duration::from_secs(5))?;
        if node.spans.is_empty() {
            return Err(
                format!("{source}: server has no spans; start it with THREELC_TRACE=1").into(),
            );
        }
        Ok(RunAnalysis::build(&MergedTimeline::build(&[node]), &cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_baselines::SchemeKind;
    use threelc_distsim::{run_experiment, ExperimentConfig};
    use threelc_obs::trace::NO_WORKER;
    use threelc_obs::{NodeTrace, SpanRecord};

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("threelc-analyze-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn rec(name: &str, node: &str, step: u64, worker: i64, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span: (start ^ end ^ step).wrapping_mul(2).wrapping_add(1),
            parent: 0,
            name: name.into(),
            node: node.into(),
            step,
            worker,
            start_ns: start,
            end_ns: end,
        }
    }

    /// A 2-worker networked step on a shared clock; `delay_w1` shifts
    /// worker 1's whole pipeline late (the delay@N:MS shape).
    fn net_step(step: u64, delay_w1: u64) -> Vec<NodeTrace> {
        let base = step * 1_000_000;
        let d = delay_w1;
        let mut server = vec![
            rec("recv_push", "server", step, 0, base, base + 750),
            rec("recv_push", "server", step, 1, base, base + 760 + d),
            rec("barrier", "server", step, NO_WORKER, base, base + 770 + d),
            rec(
                "server-decode",
                "server",
                step,
                NO_WORKER,
                base + 800 + d,
                base + 900 + d,
            ),
            rec(
                "aggregate",
                "server",
                step,
                NO_WORKER,
                base + 900 + d,
                base + 1_000 + d,
            ),
            rec(
                "re-encode",
                "server",
                step,
                NO_WORKER,
                base + 1_000 + d,
                base + 1_100 + d,
            ),
        ];
        for w in 0..2i64 {
            server.push(rec(
                "send_pull",
                "server",
                step,
                w,
                base + 1_100 + d,
                base + 1_150 + d,
            ));
        }
        let lane = |w: i64, shift: u64| {
            let n = format!("worker{w}");
            vec![
                rec(
                    "compute",
                    &n,
                    step,
                    w,
                    base + 100 + shift,
                    base + 400 + shift,
                ),
                rec(
                    "encode",
                    &n,
                    step,
                    w,
                    base + 400 + shift,
                    base + 600 + shift,
                ),
                rec(
                    "serialize",
                    &n,
                    step,
                    w,
                    base + 600 + shift,
                    base + 700 + shift,
                ),
                rec("network", &n, step, w, base + 700 + shift, base + 1_200 + d),
                rec("pull", &n, step, w, base + 1_200 + d, base + 1_300 + d),
            ]
        };
        vec![
            NodeTrace {
                clock: "server".into(),
                spans: server,
                dropped: 0,
            },
            NodeTrace {
                clock: "worker0".into(),
                spans: lane(0, 0),
                dropped: 0,
            },
            NodeTrace {
                clock: "worker1".into(),
                spans: lane(1, delay_w1),
                dropped: 0,
            },
        ]
    }

    fn report_with(node_traces: Vec<NodeTrace>, analysis: Option<RunAnalysis>) -> NetReport {
        NetReport {
            result: run_experiment(&ExperimentConfig {
                workers: 2,
                batch_per_worker: 4,
                total_steps: 2,
                model_width: 8,
                model_blocks: 1,
                ..ExperimentConfig::for_scheme(SchemeKind::Float32)
            }),
            final_model_crc32: 0,
            aggregate_mode: "exact".into(),
            connections: vec![],
            faults: Default::default(),
            node_traces,
            anomalies: vec![],
            series: Default::default(),
            analysis,
            metrics: Default::default(),
        }
    }

    fn write_report(name: &str, report: &NetReport) -> std::path::PathBuf {
        let path = tmp(name);
        std::fs::write(&path, serde_json::to_string(report).unwrap()).unwrap();
        path
    }

    #[test]
    fn analyze_flags_are_validated() {
        assert!(analyze_cmd(&s(&[])).is_err()); // source missing
        assert!(analyze_cmd(&s(&["a", "b"])).is_err()); // two sources
        assert!(analyze_cmd(&s(&["a", "--bogus"])).is_err());
        assert!(analyze_cmd(&s(&["a", "--steps", "x"])).is_err());
        assert!(analyze_cmd(&s(&["a", "--expect-blame"])).is_err());
        let err =
            analyze_cmd(&s(&["a", "--expect-blame", "worker1"])).expect_err("spec without a colon");
        assert!(err.to_string().contains("NODE:PHASE"), "got: {err}");
        // Not a file → treated as a live address → unreachable.
        assert!(analyze_cmd(&s(&["not-an-address-or-file"])).is_err());
    }

    #[test]
    fn untraced_report_points_at_the_trace_env() {
        let path = write_report("untraced.json", &report_with(vec![], None));
        let err = analyze_cmd(&s(&[path.to_str().unwrap()])).expect_err("no spans");
        assert!(err.to_string().contains("THREELC_TRACE"), "got: {err}");
    }

    #[test]
    fn clean_run_renders_and_passes_check() {
        let mut nodes = Vec::new();
        for step in 0..4 {
            nodes.extend(net_step(step, 10));
        }
        let path = write_report("clean.json", &report_with(nodes, None));
        let out =
            analyze_cmd(&s(&[path.to_str().unwrap(), "--check", "--steps", "2"])).expect("clean");
        assert!(out.contains("critical path over 4 step(s)"), "got: {out}");
        assert!(out.contains("what-if"), "got: {out}");
        assert!(out.contains("… 2 more steps"), "got: {out}");
        assert!(out.contains("analyze check passed"), "got: {out}");
        // A clean run has no dominating lane, so an expectation fails.
        assert!(analyze_cmd(&s(&[
            path.to_str().unwrap(),
            "--expect-blame",
            "worker1:network"
        ]))
        .is_err());
        // --json emits the parseable analysis.
        let json = analyze_cmd(&s(&[path.to_str().unwrap(), "--json"])).expect("json");
        let parsed: RunAnalysis = serde_json::from_str(&json).expect("parse analysis");
        assert_eq!(parsed.steps.len(), 4);
        assert!(parsed.conservation_error < 1e-9);
    }

    #[test]
    fn delayed_worker_passes_the_blame_gate_and_fails_check() {
        let mut nodes = Vec::new();
        for step in 0..4u64 {
            let d = if step == 2 { 400_000_000 } else { 0 };
            nodes.extend(net_step(step, d));
        }
        let path = write_report("delayed.json", &report_with(nodes, None));
        let out = analyze_cmd(&s(&[
            path.to_str().unwrap(),
            "--expect-blame",
            "worker1:network",
        ]))
        .expect("blame gate");
        assert!(out.contains("blame check passed"), "got: {out}");
        assert!(out.contains("bottleneck [worker1/network]"), "got: {out}");
        // The wrong lane or phase fails the gate.
        assert!(analyze_cmd(&s(&[
            path.to_str().unwrap(),
            "--expect-blame",
            "worker0:network"
        ]))
        .is_err());
        assert!(analyze_cmd(&s(&[
            path.to_str().unwrap(),
            "--expect-blame",
            "worker1:encode"
        ]))
        .is_err());
        // … and the clean-run gate fails on the flagged bottleneck.
        let err = analyze_cmd(&s(&[path.to_str().unwrap(), "--check"]))
            .expect_err("bottleneck fails --check");
        assert!(err.to_string().contains("bottleneck"), "got: {err}");
    }

    #[test]
    fn stripped_spans_fall_back_to_the_embedded_analysis() {
        let mut nodes = Vec::new();
        for step in 0..3 {
            nodes.extend(net_step(step, 0));
        }
        let analysis =
            RunAnalysis::build(&MergedTimeline::build(&nodes), &AnalysisConfig::default());
        let path = write_report(
            "embedded.json",
            &report_with(vec![], Some(analysis.clone())),
        );
        let json = analyze_cmd(&s(&[path.to_str().unwrap(), "--json"])).expect("fallback");
        let parsed: RunAnalysis = serde_json::from_str(&json).expect("parse");
        assert_eq!(parsed, analysis);
    }
}
