//! Adaptive, layer-wise compression policies for 3LC.
//!
//! 3LC exposes exactly one compression knob — the sparsity multiplier
//! `s ∈ [1, 2)` — and the right setting varies per layer and per
//! training phase (ACCORDION-style norm triggers, GraVAC's
//! compression-factor search). This crate turns that compile-time
//! constant into a first-class control loop: a [`Policy`] decides the
//! multiplier **per tensor per step**, fed only by telemetry that is a
//! deterministic function of the training stream (achieved wire bytes,
//! residual L2), never by wall-clock time.
//!
//! # Determinism contract
//!
//! Every decision is a pure function of `(step, tensor, prior
//! telemetry)`. The distributed runtime relies on this three ways:
//!
//! 1. the in-process simulator and the TCP runtime evaluate the policy
//!    in the same place (the shared `ServerCore`) on the same inputs,
//!    so both produce bit-identical multiplier sequences;
//! 2. workers never evaluate the policy — the server broadcasts its
//!    decisions with each pull batch, so replicas cannot drift;
//! 3. rejoin replay re-delivers the recorded pull batches, which
//!    reconstructs the exact decision sequence for a resumed worker.
//!
//! [`TensorObs`] is therefore restricted to integer byte counts and
//! exactly-reproducible floats; encode *time* is deliberately absent.
//!
//! # Spec strings
//!
//! Policies are configured from a compact spec string (the CLI's
//! `--policy` flag), or from a JSON file via `@path`:
//!
//! ```text
//! static                                     keep the scheme's multiplier
//! static:1.5                                 fixed override for every tensor
//! schedule:from=1.0,to=1.9,over=8[,layer=0.01]
//! feedback:ratio=12,start=1.2[,gain=0.05][,band=0.1][,hold=2]
//! feedback:residual=0.5,start=1.8[,gain=0.05][,band=0.1][,hold=2]
//! @policy.json                               PolicySpec as JSON
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use threelc::{CompressError, SparsityMultiplier};

/// The largest multiplier a policy may emit: the greatest `f32` strictly
/// below 2.0, so clamped decisions still satisfy `s ∈ [1, 2)`.
pub const MAX_SPARSITY: f32 = 1.999_999_9;

/// Why a policy chose the multiplier it did, recorded per tensor per
/// step so a run's control behaviour can be audited from its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reason {
    /// The scheme's static multiplier; no adaptation requested.
    Static,
    /// The first decision of the run, before any telemetry exists.
    Init,
    /// A schedule still ramping between its endpoints.
    Ramp,
    /// Holding: the schedule finished, or feedback hysteresis is
    /// waiting out its hold window after a nudge.
    Hold,
    /// Achieved compression ratio below the target band: raise `s`.
    RatioLow,
    /// Achieved compression ratio above the target band: lower `s`.
    RatioHigh,
    /// Accumulated residual above the target band: lower `s`.
    ResidualHigh,
    /// Accumulated residual below the target band: raise `s`.
    ResidualLow,
    /// The observed metric sits inside the target band; no change.
    InBand,
}

impl Reason {
    /// Stable single-byte code for the wire protocol.
    pub fn code(self) -> u8 {
        match self {
            Reason::Static => 0,
            Reason::Init => 1,
            Reason::Ramp => 2,
            Reason::Hold => 3,
            Reason::RatioLow => 4,
            Reason::RatioHigh => 5,
            Reason::ResidualHigh => 6,
            Reason::ResidualLow => 7,
            Reason::InBand => 8,
        }
    }

    /// Inverse of [`Reason::code`].
    pub fn from_code(code: u8) -> Option<Reason> {
        Some(match code {
            0 => Reason::Static,
            1 => Reason::Init,
            2 => Reason::Ramp,
            3 => Reason::Hold,
            4 => Reason::RatioLow,
            5 => Reason::RatioHigh,
            6 => Reason::ResidualHigh,
            7 => Reason::ResidualLow,
            8 => Reason::InBand,
            _ => return None,
        })
    }

    /// Short lowercase name for logs and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Reason::Static => "static",
            Reason::Init => "init",
            Reason::Ramp => "ramp",
            Reason::Hold => "hold",
            Reason::RatioLow => "ratio-low",
            Reason::RatioHigh => "ratio-high",
            Reason::ResidualHigh => "residual-high",
            Reason::ResidualLow => "residual-low",
            Reason::InBand => "in-band",
        }
    }
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One tensor's multiplier for one step, plus why it was chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The multiplier to encode with. Always validated: the type cannot
    /// hold a NaN or out-of-range value.
    pub s: SparsityMultiplier,
    /// The trigger that produced it.
    pub reason: Reason,
}

/// Per-tensor telemetry from the previous step, the only inputs a
/// policy may consult. Every field is bit-reproducible between the
/// simulator and the networked runtime.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TensorObs {
    /// Elements in the tensor.
    pub values: usize,
    /// Wire bytes this tensor cost last step, summed over workers.
    pub wire_bytes: usize,
    /// How many worker payloads `wire_bytes` spans.
    pub payloads: usize,
    /// Run-level residual L2 (max across workers) after last step's
    /// encode. The same value is shared by every tensor's observation.
    pub residual_l2: f64,
}

impl TensorObs {
    /// Achieved compression ratio versus raw f32 (4 bytes/value);
    /// 0.0 until the tensor has been observed on the wire.
    pub fn achieved_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            0.0
        } else {
            (self.values * self.payloads * 4) as f64 / self.wire_bytes as f64
        }
    }

    /// Fraction of the quartic stream the zero-run encoder removed,
    /// derived from byte counts (quartic packs five values per byte and
    /// each payload spends [`threelc::sizing::WIRE_HEADER_LEN`] bytes
    /// on its header). 0.0 when nothing was saved or nothing observed.
    pub fn zero_run_share(&self) -> f64 {
        if self.payloads == 0 {
            return 0.0;
        }
        let quartic = self.values.div_ceil(5) * self.payloads;
        let body = self
            .wire_bytes
            .saturating_sub(threelc::sizing::WIRE_HEADER_LEN * self.payloads);
        if quartic == 0 || body >= quartic {
            0.0
        } else {
            (quartic - body) as f64 / quartic as f64
        }
    }
}

/// A compression policy: decides every tensor's sparsity multiplier for
/// a step from the previous step's telemetry.
///
/// Implementations must be deterministic — the same `(step, obs)`
/// sequence must yield the same decisions on every host — and are
/// driven only by the server (workers receive decisions over the wire).
pub trait Policy: Send {
    /// Human-readable label recorded into reports.
    fn label(&self) -> String;

    /// Decides the multiplier for every tensor at `step`. `obs` holds
    /// the previous step's per-tensor telemetry and is empty for the
    /// first decision of a run.
    fn decide(&mut self, step: u64, obs: &[TensorObs]) -> Vec<Decision>;
}

/// Spec-string / JSON form of a policy: `Copy`, so it embeds directly
/// in `ExperimentConfig` and travels to workers with the config JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// No adaptation: compressors keep their configured multiplier and
    /// nothing extra goes on the wire. The default.
    #[default]
    Static,
    /// A fixed override applied to every tensor at every step.
    Fixed {
        /// The multiplier, validated into `[1, 2)` at parse time.
        s: f32,
    },
    /// Warmup-aware linear ramp with an optional per-layer tilt:
    /// `s(step, tensor) = from + (to - from)·min(step/over, 1) +
    /// layer·tensor`, clamped into `[1, 2)`.
    Schedule {
        /// Multiplier at step 0.
        from: f32,
        /// Multiplier once the ramp completes.
        to: f32,
        /// Steps the ramp spans (≥ 1).
        over: u64,
        /// Additive per-tensor tilt (deeper layers get `+layer` each).
        layer: f32,
    },
    /// Bounded controller nudging `s` toward a target band, with
    /// hysteresis (a hold window after every nudge) and clamping.
    Feedback {
        /// What the controller steers.
        target: FeedbackTarget,
        /// Initial multiplier for every tensor.
        start: f32,
        /// Step size of one nudge.
        gain: f32,
        /// Half-width of the dead band, as a fraction of the target.
        band: f32,
        /// Steps to hold after a nudge before reconsidering.
        hold: u64,
    },
}

/// What the [`PolicySpec::Feedback`] controller steers toward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeedbackTarget {
    /// Steer each tensor's achieved compression ratio (vs raw f32)
    /// toward `target`: ratio too low raises `s`, too high lowers it.
    Ratio {
        /// Desired compression ratio.
        target: f32,
    },
    /// Steer the run-level residual L2 into a band around `target`:
    /// residual too high lowers `s`, too low raises it.
    Residual {
        /// Desired residual L2.
        target: f32,
    },
}

/// A policy spec that failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyError(String);

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid policy: {}", self.0)
    }
}

impl std::error::Error for PolicyError {}

impl From<CompressError> for PolicyError {
    fn from(e: CompressError) -> Self {
        PolicyError(e.to_string())
    }
}

fn check_s(name: &str, v: f32) -> Result<f32, PolicyError> {
    SparsityMultiplier::new(v).map_err(|e| PolicyError(format!("{name}: {e}")))?;
    Ok(v)
}

impl PolicySpec {
    /// Whether this spec changes anything at runtime. `Static` is the
    /// only non-adaptive spec: it emits no wire frames and leaves every
    /// compressor's configured multiplier untouched, so a static run is
    /// bit-identical to one from before policies existed.
    pub fn is_adaptive(&self) -> bool {
        !matches!(self, PolicySpec::Static)
    }

    /// Validates every numeric field, returning a typed error naming
    /// the offending one. Parsing calls this; configs deserialized from
    /// JSON (the worker handshake, `@file` specs) must call it too.
    pub fn validate(&self) -> Result<(), PolicyError> {
        match *self {
            PolicySpec::Static => {}
            PolicySpec::Fixed { s } => {
                check_s("s", s)?;
            }
            PolicySpec::Schedule {
                from,
                to,
                over,
                layer,
            } => {
                check_s("from", from)?;
                check_s("to", to)?;
                if over == 0 {
                    return Err(PolicyError("over must be at least 1 step".into()));
                }
                if !layer.is_finite() || layer.abs() >= 1.0 {
                    return Err(PolicyError(format!(
                        "layer tilt {layer} must be finite with |layer| < 1"
                    )));
                }
            }
            PolicySpec::Feedback {
                target,
                start,
                gain,
                band,
                hold: _,
            } => {
                check_s("start", start)?;
                let t = match target {
                    FeedbackTarget::Ratio { target } => target,
                    FeedbackTarget::Residual { target } => target,
                };
                if !t.is_finite() || t <= 0.0 {
                    return Err(PolicyError(format!("target {t} must be finite and > 0")));
                }
                if !gain.is_finite() || gain <= 0.0 || gain >= 1.0 {
                    return Err(PolicyError(format!("gain {gain} must be in (0, 1)")));
                }
                if !band.is_finite() || !(0.0..1.0).contains(&band) {
                    return Err(PolicyError(format!("band {band} must be in [0, 1)")));
                }
            }
        }
        Ok(())
    }

    /// Parses a spec string (see the crate docs for the grammar), or a
    /// `@path` reference to a JSON file holding the serde form.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] naming the malformed part; every numeric
    /// field is range-checked via [`PolicySpec::validate`].
    pub fn parse(spec: &str) -> Result<PolicySpec, PolicyError> {
        let spec = spec.trim();
        if let Some(path) = spec.strip_prefix('@') {
            let text =
                std::fs::read_to_string(path).map_err(|e| PolicyError(format!("{path}: {e}")))?;
            let parsed: PolicySpec =
                serde_json::from_str(&text).map_err(|e| PolicyError(format!("{path}: {e}")))?;
            parsed.validate()?;
            return Ok(parsed);
        }
        let (kind, rest) = match spec.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (spec, None),
        };
        let parsed = match (kind, rest) {
            ("static", None) => PolicySpec::Static,
            ("static" | "fixed", Some(v)) => PolicySpec::Fixed {
                s: parse_num("s", v)?,
            },
            ("schedule", Some(body)) => {
                let kv = parse_kv(body)?;
                PolicySpec::Schedule {
                    from: require(&kv, "from")?,
                    to: require(&kv, "to")?,
                    over: require(&kv, "over")? as u64,
                    layer: optional(&kv, "layer", 0.0),
                }
            }
            ("feedback", Some(body)) => {
                let kv = parse_kv(body)?;
                let target = match (get(&kv, "ratio"), get(&kv, "residual")) {
                    (Some(t), None) => FeedbackTarget::Ratio { target: t },
                    (None, Some(t)) => FeedbackTarget::Residual { target: t },
                    _ => {
                        return Err(PolicyError(
                            "feedback needs exactly one of ratio= or residual=".into(),
                        ))
                    }
                };
                PolicySpec::Feedback {
                    target,
                    start: require(&kv, "start")?,
                    gain: optional(&kv, "gain", 0.05),
                    band: optional(&kv, "band", 0.1),
                    hold: optional(&kv, "hold", 2.0) as u64,
                }
            }
            _ => {
                return Err(PolicyError(format!(
                    "unknown spec `{spec}` (want static[:S], schedule:..., \
                     feedback:..., or @file.json)"
                )))
            }
        };
        parsed.validate()?;
        Ok(parsed)
    }

    /// Compact label for reports and logs; parseable back by
    /// [`PolicySpec::parse`].
    pub fn label(&self) -> String {
        match *self {
            PolicySpec::Static => "static".into(),
            PolicySpec::Fixed { s } => format!("static:{s}"),
            PolicySpec::Schedule {
                from,
                to,
                over,
                layer,
            } => format!("schedule:from={from},to={to},over={over},layer={layer}"),
            PolicySpec::Feedback {
                target,
                start,
                gain,
                band,
                hold,
            } => {
                let t = match target {
                    FeedbackTarget::Ratio { target } => format!("ratio={target}"),
                    FeedbackTarget::Residual { target } => format!("residual={target}"),
                };
                format!("feedback:{t},start={start},gain={gain},band={band},hold={hold}")
            }
        }
    }

    /// Builds the runtime policy for `n_tensors` tensors. `base` is the
    /// scheme's own multiplier, which `Static` keeps.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] if the spec does not validate.
    pub fn build(
        &self,
        n_tensors: usize,
        base: SparsityMultiplier,
    ) -> Result<Box<dyn Policy>, PolicyError> {
        self.validate()?;
        Ok(match *self {
            PolicySpec::Static => Box::new(Static {
                s: base,
                n_tensors,
                reason: Reason::Static,
            }),
            PolicySpec::Fixed { s } => Box::new(Static {
                s: SparsityMultiplier::new(s)?,
                n_tensors,
                reason: Reason::Init,
            }),
            PolicySpec::Schedule {
                from,
                to,
                over,
                layer,
            } => Box::new(Schedule {
                from,
                to,
                over,
                layer,
                n_tensors,
            }),
            PolicySpec::Feedback {
                target,
                start,
                gain,
                band,
                hold,
            } => Box::new(Feedback {
                target,
                gain,
                band,
                hold,
                state: vec![(start, 0u64); n_tensors],
                first: true,
            }),
        })
    }

    /// The decisions in effect at step 0, before any telemetry exists —
    /// a pure function of the spec, so a worker computes the same
    /// initial multipliers as the server without any wire traffic.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] if the spec does not validate.
    pub fn initial_decisions(
        &self,
        n_tensors: usize,
        base: SparsityMultiplier,
    ) -> Result<Vec<Decision>, PolicyError> {
        Ok(self.build(n_tensors, base)?.decide(0, &[]))
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

fn parse_num(name: &str, v: &str) -> Result<f32, PolicyError> {
    let n: f32 = v
        .parse()
        .map_err(|_| PolicyError(format!("{name}: `{v}` is not a number")))?;
    if !n.is_finite() {
        return Err(PolicyError(format!("{name}: `{v}` is not finite")));
    }
    Ok(n)
}

fn parse_kv(body: &str) -> Result<Vec<(String, f32)>, PolicyError> {
    let mut out = Vec::new();
    for part in body.split(',') {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| PolicyError(format!("`{part}` is not key=value")))?;
        out.push((k.trim().to_string(), parse_num(k.trim(), v.trim())?));
    }
    Ok(out)
}

fn get(kv: &[(String, f32)], key: &str) -> Option<f32> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn require(kv: &[(String, f32)], key: &str) -> Result<f32, PolicyError> {
    get(kv, key).ok_or_else(|| PolicyError(format!("missing {key}=")))
}

fn optional(kv: &[(String, f32)], key: &str, default: f32) -> f32 {
    get(kv, key).unwrap_or(default)
}

/// Clamps a proposed multiplier into the valid `[1, 2)` range. The
/// result always converts into a [`SparsityMultiplier`].
fn clamp_s(v: f32) -> SparsityMultiplier {
    let c = if v.is_finite() {
        v.clamp(1.0, MAX_SPARSITY)
    } else {
        1.0
    };
    SparsityMultiplier::new(c).expect("clamped multiplier is in range")
}

/// The identity policy: the same multiplier for every tensor at every
/// step (the scheme's own for `Static` specs, an override for `Fixed`).
struct Static {
    s: SparsityMultiplier,
    n_tensors: usize,
    reason: Reason,
}

impl Policy for Static {
    fn label(&self) -> String {
        format!("static ({})", self.s)
    }

    fn decide(&mut self, _step: u64, _obs: &[TensorObs]) -> Vec<Decision> {
        vec![
            Decision {
                s: self.s,
                reason: self.reason,
            };
            self.n_tensors
        ]
    }
}

/// Linear step ramp with a per-layer tilt; see [`PolicySpec::Schedule`].
struct Schedule {
    from: f32,
    to: f32,
    over: u64,
    layer: f32,
    n_tensors: usize,
}

impl Policy for Schedule {
    fn label(&self) -> String {
        format!(
            "schedule:from={},to={},over={},layer={}",
            self.from, self.to, self.over, self.layer
        )
    }

    fn decide(&mut self, step: u64, _obs: &[TensorObs]) -> Vec<Decision> {
        let frac = (step.min(self.over) as f32) / (self.over as f32);
        let base = self.from + (self.to - self.from) * frac;
        let reason = if step == 0 {
            Reason::Init
        } else if step < self.over {
            Reason::Ramp
        } else {
            Reason::Hold
        };
        (0..self.n_tensors)
            .map(|i| Decision {
                s: clamp_s(base + self.layer * i as f32),
                reason,
            })
            .collect()
    }
}

/// Bounded per-tensor controller; see [`PolicySpec::Feedback`].
struct Feedback {
    target: FeedbackTarget,
    gain: f32,
    band: f32,
    hold: u64,
    /// Per-tensor `(current s, hold steps remaining)`.
    state: Vec<(f32, u64)>,
    first: bool,
}

impl Policy for Feedback {
    fn label(&self) -> String {
        format!(
            "feedback:{},gain={},band={},hold={}",
            match self.target {
                FeedbackTarget::Ratio { target } => format!("ratio={target}"),
                FeedbackTarget::Residual { target } => format!("residual={target}"),
            },
            self.gain,
            self.band,
            self.hold
        )
    }

    fn decide(&mut self, _step: u64, obs: &[TensorObs]) -> Vec<Decision> {
        if self.first || obs.len() != self.state.len() {
            self.first = false;
            return self
                .state
                .iter()
                .map(|&(s, _)| Decision {
                    s: clamp_s(s),
                    reason: Reason::Init,
                })
                .collect();
        }
        // Both targets move the same way: a metric below the band means
        // the encoder can push harder (raise `s`), above means back off.
        // Raising `s` raises both the achieved ratio and the residual.
        let (target, low_reason, high_reason) = match self.target {
            FeedbackTarget::Ratio { target } => {
                (f64::from(target), Reason::RatioLow, Reason::RatioHigh)
            }
            FeedbackTarget::Residual { target } => {
                (f64::from(target), Reason::ResidualLow, Reason::ResidualHigh)
            }
        };
        let lo = target * (1.0 - f64::from(self.band));
        let hi = target * (1.0 + f64::from(self.band));
        self.state
            .iter_mut()
            .zip(obs)
            .map(|(state, o)| {
                let (ref mut s, ref mut hold_left) = *state;
                let reason = if *hold_left > 0 {
                    *hold_left -= 1;
                    Reason::Hold
                } else {
                    let metric = match self.target {
                        FeedbackTarget::Ratio { .. } => o.achieved_ratio(),
                        FeedbackTarget::Residual { .. } => o.residual_l2,
                    };
                    if metric < lo {
                        *s += self.gain;
                        *hold_left = self.hold;
                        low_reason
                    } else if metric > hi {
                        *s -= self.gain;
                        *hold_left = self.hold;
                        high_reason
                    } else {
                        Reason::InBand
                    }
                };
                let clamped = clamp_s(*s);
                *s = clamped.value();
                Decision { s: clamped, reason }
            })
            .collect()
    }
}

/// One recorded policy decision: what was in effect for `tensor` at
/// `step`, why, and what it achieved. The `policy` section of a
/// training trace is a flat list of these.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyRecord {
    /// Step the decision governed.
    pub step: u64,
    /// Tensor (parameter) index.
    pub tensor: u16,
    /// Multiplier in effect.
    pub s: f32,
    /// Trigger that chose it.
    pub reason: Reason,
    /// Compression ratio the tensor achieved at that step.
    pub achieved_ratio: f64,
}

/// The policy section of a training trace: which policy ran and every
/// per-step per-tensor decision it made. Empty (default) for static
/// runs and for reports written before policies existed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyTrace {
    /// The spec label (e.g. `feedback:ratio=12,...`); empty if static.
    #[serde(default)]
    pub label: String,
    /// Flat decision log, step-major then tensor order.
    #[serde(default)]
    pub records: Vec<PolicyRecord>,
}

impl PolicyTrace {
    /// The multipliers this trace recorded, in log order.
    pub fn multipliers(&self) -> Vec<f32> {
        self.records.iter().map(|r| r.s).collect()
    }

    /// Whether the recorded multiplier sequence ever changes — the
    /// "did the policy actually adapt" check CI asserts on.
    pub fn is_constant(&self) -> bool {
        self.records
            .windows(2)
            .all(|w| w[0].s.to_bits() == w[1].s.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(values: usize, wire_bytes: usize, residual: f64) -> TensorObs {
        TensorObs {
            values,
            wire_bytes,
            payloads: 1,
            residual_l2: residual,
        }
    }

    #[test]
    fn spec_parsing_roundtrips_through_labels() {
        for spec in [
            "static",
            "static:1.5",
            "schedule:from=1.0,to=1.9,over=8",
            "schedule:from=1.2,to=1.8,over=4,layer=0.01",
            "feedback:ratio=12,start=1.2",
            "feedback:residual=0.5,start=1.8,gain=0.1,band=0.2,hold=3",
        ] {
            let parsed = PolicySpec::parse(spec).expect(spec);
            let relabeled = PolicySpec::parse(&parsed.label()).expect("label parses");
            assert_eq!(parsed, relabeled, "{spec}");
        }
    }

    #[test]
    fn spec_parsing_rejects_malformed_and_out_of_range() {
        for bad in [
            "",
            "nonsense",
            "static:0.5",
            "static:2.0",
            "static:nan",
            "schedule:from=1.0",                       // missing to/over
            "schedule:from=0.9,to=1.5,over=4",         // from out of range
            "schedule:from=1.0,to=1.5,over=0",         // zero ramp
            "schedule:from=1.0,to=1.5,over=4,layer=2", // tilt too large
            "feedback:start=1.2",                      // no target
            "feedback:ratio=12,residual=1,start=1.2",  // both targets
            "feedback:ratio=12,start=2.5",             // start out of range
            "feedback:ratio=-1,start=1.2",             // non-positive target
            "feedback:ratio=12,start=1.2,gain=0",      // zero gain
            "feedback:ratio=12,start=1.2,band=1.5",    // band out of range
            "feedback:ratio=12,start=1.2,bogus",       // not key=value
            "@/nonexistent/policy.json",
        ] {
            assert!(PolicySpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn spec_file_form_parses_json() {
        let dir = std::env::temp_dir().join("threelc-policy-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("{}-spec.json", std::process::id()));
        let spec = PolicySpec::Schedule {
            from: 1.0,
            to: 1.9,
            over: 8,
            layer: 0.0,
        };
        std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
        let parsed = PolicySpec::parse(&format!("@{}", path.display())).expect("file spec");
        assert_eq!(parsed, spec);
        // An in-range-typed but invalid file still gets validated.
        let bad = path.with_extension("bad.json");
        std::fs::write(&bad, "{\"Fixed\":{\"s\":3.0}}").unwrap();
        assert!(PolicySpec::parse(&format!("@{}", bad.display())).is_err());
    }

    #[test]
    fn spec_serde_roundtrip_inside_json() {
        for spec in [
            PolicySpec::Static,
            PolicySpec::Fixed { s: 1.5 },
            PolicySpec::Schedule {
                from: 1.0,
                to: 1.9,
                over: 8,
                layer: 0.01,
            },
            PolicySpec::Feedback {
                target: FeedbackTarget::Ratio { target: 12.0 },
                start: 1.2,
                gain: 0.05,
                band: 0.1,
                hold: 2,
            },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn static_policy_repeats_the_base_multiplier() {
        let base = SparsityMultiplier::new(1.5).unwrap();
        let mut p = PolicySpec::Static.build(3, base).unwrap();
        for step in 0..4 {
            let d = p.decide(step, &[obs(100, 40, 0.0); 3]);
            assert_eq!(d.len(), 3);
            assert!(d.iter().all(|d| d.s == base));
            assert!(d.iter().all(|d| d.reason == Reason::Static));
        }
        assert!(!PolicySpec::Static.is_adaptive());
        assert!(PolicySpec::Fixed { s: 1.5 }.is_adaptive());
    }

    #[test]
    fn schedule_ramps_between_endpoints_with_layer_tilt() {
        let spec = PolicySpec::Schedule {
            from: 1.0,
            to: 1.8,
            over: 4,
            layer: 0.01,
        };
        let base = SparsityMultiplier::default();
        let mut p = spec.build(2, base).unwrap();
        let step0 = p.decide(0, &[]);
        assert_eq!(step0[0].s.value(), 1.0);
        assert!((step0[1].s.value() - 1.01).abs() < 1e-6);
        assert_eq!(step0[0].reason, Reason::Init);
        let step2 = p.decide(2, &[]);
        assert!((step2[0].s.value() - 1.4).abs() < 1e-6);
        assert_eq!(step2[0].reason, Reason::Ramp);
        // Past the ramp the schedule holds its endpoint.
        let step9 = p.decide(9, &[]);
        assert!((step9[0].s.value() - 1.8).abs() < 1e-6);
        assert_eq!(step9[0].reason, Reason::Hold);
        // Matches the pure initial_decisions helper the worker uses.
        assert_eq!(spec.initial_decisions(2, base).unwrap(), {
            let mut q = spec.build(2, base).unwrap();
            q.decide(0, &[])
        });
    }

    #[test]
    fn schedule_clamps_the_tilt_into_range() {
        let mut p = PolicySpec::Schedule {
            from: 1.9,
            to: 1.9,
            over: 1,
            layer: 0.09,
        }
        .build(4, SparsityMultiplier::default())
        .unwrap();
        let d = p.decide(5, &[]);
        // 1.9 + 0.09·3 would exceed 2.0; every decision stays valid.
        assert!(d.iter().all(|d| d.s.value() < 2.0));
        assert_eq!(d[3].s.value(), MAX_SPARSITY);
    }

    #[test]
    fn feedback_ratio_controller_nudges_toward_target_with_hysteresis() {
        let spec = PolicySpec::Feedback {
            target: FeedbackTarget::Ratio { target: 10.0 },
            start: 1.2,
            gain: 0.1,
            band: 0.1,
            hold: 1,
        };
        let mut p = spec.build(1, SparsityMultiplier::default()).unwrap();
        let init = p.decide(0, &[]);
        assert_eq!(init[0].reason, Reason::Init);
        assert!((init[0].s.value() - 1.2).abs() < 1e-6);
        // Ratio 4x < 9x band floor: raise s, then hold one step.
        let d = p.decide(1, &[obs(100, 100, 0.0)]);
        assert_eq!(d[0].reason, Reason::RatioLow);
        assert!((d[0].s.value() - 1.3).abs() < 1e-6);
        let d = p.decide(2, &[obs(100, 100, 0.0)]);
        assert_eq!(d[0].reason, Reason::Hold);
        assert!((d[0].s.value() - 1.3).abs() < 1e-6);
        // Ratio 20x > 11x band ceiling: lower s.
        let d = p.decide(3, &[obs(100, 20, 0.0)]);
        assert_eq!(d[0].reason, Reason::RatioHigh);
        assert!((d[0].s.value() - 1.2).abs() < 1e-6);
        // In band: no change, no hold.
        let mut p2 = spec.build(1, SparsityMultiplier::default()).unwrap();
        p2.decide(0, &[]);
        let d = p2.decide(1, &[obs(100, 40, 0.0)]);
        assert_eq!(d[0].reason, Reason::InBand);
    }

    #[test]
    fn feedback_residual_controller_moves_the_opposite_way() {
        let spec = PolicySpec::Feedback {
            target: FeedbackTarget::Residual { target: 1.0 },
            start: 1.5,
            gain: 0.1,
            band: 0.1,
            hold: 0,
        };
        let mut p = spec.build(1, SparsityMultiplier::default()).unwrap();
        p.decide(0, &[]);
        // Residual above band: back off sparsity.
        let d = p.decide(1, &[obs(100, 40, 2.0)]);
        assert_eq!(d[0].reason, Reason::ResidualHigh);
        assert!((d[0].s.value() - 1.4).abs() < 1e-6);
        // Residual below band: push harder.
        let d = p.decide(2, &[obs(100, 40, 0.1)]);
        assert_eq!(d[0].reason, Reason::ResidualLow);
        assert!((d[0].s.value() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn feedback_clamps_at_both_rails() {
        let mut p = PolicySpec::Feedback {
            target: FeedbackTarget::Ratio { target: 1000.0 },
            start: 1.9,
            gain: 0.5,
            band: 0.0,
            hold: 0,
        }
        .build(1, SparsityMultiplier::default())
        .unwrap();
        p.decide(0, &[]);
        for step in 1..5 {
            let d = p.decide(step, &[obs(100, 100, 0.0)]);
            assert!(d[0].s.value() < 2.0, "step {step} escaped the clamp");
        }
        let mut p = PolicySpec::Feedback {
            target: FeedbackTarget::Residual { target: 0.001 },
            start: 1.1,
            gain: 0.5,
            band: 0.0,
            hold: 0,
        }
        .build(1, SparsityMultiplier::default())
        .unwrap();
        p.decide(0, &[]);
        for step in 1..5 {
            let d = p.decide(step, &[obs(100, 100, 5.0)]);
            assert!(d[0].s.value() >= 1.0, "step {step} escaped the clamp");
        }
    }

    #[test]
    fn decisions_are_a_pure_function_of_the_input_sequence() {
        let spec = PolicySpec::Feedback {
            target: FeedbackTarget::Ratio { target: 8.0 },
            start: 1.3,
            gain: 0.07,
            band: 0.05,
            hold: 2,
        };
        let stream: Vec<Vec<TensorObs>> = (0..20)
            .map(|i| vec![obs(256, 40 + (i * 13) % 90, 0.25 * i as f64); 3])
            .collect();
        let run = |spec: &PolicySpec| {
            let mut p = spec.build(3, SparsityMultiplier::default()).unwrap();
            let mut all = vec![p.decide(0, &[])];
            for (i, o) in stream.iter().enumerate() {
                all.push(p.decide(i as u64 + 1, o));
            }
            all
        };
        assert_eq!(run(&spec), run(&spec), "replayed decisions diverged");
    }

    #[test]
    fn reasons_roundtrip_through_wire_codes() {
        for code in 0..=8 {
            let r = Reason::from_code(code).expect("code maps");
            assert_eq!(r.code(), code);
            assert!(!r.as_str().is_empty());
        }
        assert!(Reason::from_code(9).is_none());
        let json = serde_json::to_string(&Reason::RatioLow).unwrap();
        let back: Reason = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Reason::RatioLow);
    }

    #[test]
    fn tensor_obs_derives_ratio_and_zero_run_share() {
        let o = obs(1000, 50, 0.0);
        assert!((o.achieved_ratio() - 80.0).abs() < 1e-9);
        assert_eq!(obs(1000, 0, 0.0).achieved_ratio(), 0.0);
        // 1000 values → 200 quartic bytes; 50 wire bytes minus the
        // 9-byte header leaves 41 body bytes → 159/200 removed.
        assert!((o.zero_run_share() - 159.0 / 200.0).abs() < 1e-9);
        assert_eq!(TensorObs::default().zero_run_share(), 0.0);
    }

    #[test]
    fn policy_trace_detects_constant_sequences() {
        let mut t = PolicyTrace::default();
        assert!(t.is_constant());
        t.records.push(PolicyRecord {
            step: 0,
            tensor: 0,
            s: 1.2,
            reason: Reason::Init,
            achieved_ratio: 0.0,
        });
        t.records.push(PolicyRecord {
            step: 1,
            tensor: 0,
            s: 1.2,
            reason: Reason::Hold,
            achieved_ratio: 10.0,
        });
        assert!(t.is_constant());
        t.records.push(PolicyRecord {
            step: 2,
            tensor: 0,
            s: 1.3,
            reason: Reason::RatioLow,
            achieved_ratio: 5.0,
        });
        assert!(!t.is_constant());
        assert_eq!(t.multipliers().len(), 3);
        let json = serde_json::to_string(&t).unwrap();
        let back: PolicyTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
