//! Scratch: accuracy of high-sparsity 3LC at standard steps.
use threelc_baselines::SchemeKind;
use threelc_distsim::{run_experiment, ExperimentConfig};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1200);
    for s in [1.0f32, 1.5, 1.75, 1.9] {
        let cfg = ExperimentConfig {
            scheme: SchemeKind::three_lc(s),
            total_steps: steps,
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        println!(
            "s={s:<5} acc {:.2}%  bits/value {:.3}  ratio {:.1}x",
            r.final_eval.accuracy * 100.0,
            r.bits_per_value(),
            r.compression_ratio()
        );
    }
}
