//! Scratch: trace s=1.9 dynamics.
use threelc_baselines::SchemeKind;
use threelc_distsim::{Cluster, ExperimentConfig};

fn main() {
    let s: f32 = std::env::args()
        .nth(1)
        .and_then(|x| x.parse().ok())
        .unwrap_or(1.9);
    let steps: u64 = std::env::args()
        .nth(2)
        .and_then(|x| x.parse().ok())
        .unwrap_or(400);
    let cfg = ExperimentConfig {
        scheme: SchemeKind::three_lc(s),
        total_steps: steps,
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    for t in 0..steps {
        let r = c.step();
        if t % 25 == 0 || t == steps - 1 {
            let gmax = c
                .global_model()
                .params()
                .iter()
                .map(|p| p.max_abs())
                .fold(0.0f32, f32::max);
            println!(
                "step {t:4} lr {:.4} loss {:8.4} push_bits/v {:.3} |global|max {gmax:.3}",
                r.lr,
                r.loss,
                r.push_bits_per_value(10)
            );
        }
    }
    println!("final acc {:.2}%", c.evaluate().accuracy * 100.0);
}
