//! Scratch calibration: convergence + wall time at default experiment scale.
use std::time::Instant;
use threelc_baselines::SchemeKind;
use threelc_distsim::{run_experiment, ExperimentConfig, NetworkModel};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    for scheme in [SchemeKind::Float32, SchemeKind::three_lc(1.0)] {
        let cfg = ExperimentConfig {
            scheme,
            total_steps: steps,
            eval_every: steps / 4,
            ..Default::default()
        };
        let t0 = Instant::now();
        let r = run_experiment(&cfg);
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "== {} ({} steps, wall {:.1}s, {:.1} ms/step)",
            r.scheme_label,
            steps,
            wall,
            wall * 1000.0 / steps as f64
        );
        for e in &r.trace.evals {
            println!(
                "  step {:4}  loss {:.3}  acc {:.2}%",
                e.step,
                e.eval.loss,
                e.eval.accuracy * 100.0
            );
        }
        println!(
            "  bits/value {:.3}  ratio {:.1}x  params {}",
            r.bits_per_value(),
            r.compression_ratio(),
            r.model_params
        );
        for (label, net) in NetworkModel::paper_presets() {
            println!(
                "  time @ {}: {:.1} min",
                label,
                r.total_seconds_at(&net) / 60.0
            );
        }
    }
}
