//! The bulk-synchronous parameter-server cluster.

use crate::config::ExperimentConfig;
use crate::engine::{self, Problem, ServerCore, TensorPayload, WorkerReplica};
use crate::trace::StepRecord;
use threelc::CompressionStats;
use threelc_learning::{Batch, Evaluation, Network, SyntheticImages};
use threelc_obs::trace::{self, TraceScope, TraceSpan};
use threelc_obs::{RunRecorder, RunSeries, WorkerDelta};
use threelc_policy::PolicyTrace;
use threelc_tensor::{Rng, Tensor};

/// An in-process parameter-server cluster (paper Figures 1–2).
///
/// Training dynamics are exact: every gradient flows through a real
/// compression context on push, the server's SGD-with-momentum updates the
/// full-precision global model, and every model delta flows through a real
/// (shared) compression context on pull. Wall-clock time is *simulated*
/// from the measured codec CPU time and byte counts recorded in each
/// [`StepRecord`].
///
/// The arithmetic lives in [`crate::engine`], which the TCP runtime
/// (`threelc-net`) drives over real sockets; this type adds what a single
/// process can simulate cheaply — straggler jitter, backup workers, the
/// stale-pull pipeline, and per-server traffic accounting.
pub struct Cluster {
    config: ExperimentConfig,
    server: ServerCore,
    workers: Vec<WorkerReplica>,
    data: SyntheticImages,
    test: Batch,
    compressible_values: u64,
    /// RNG for per-step straggler jitter (separate stream so enabling
    /// jitter does not perturb data sampling).
    straggler_rng: Rng,
    /// Stale-pull pipeline: decoded per-tensor deltas waiting to be
    /// applied to workers (`config.staleness` steps deep; empty in BSP).
    pending_deltas: std::collections::VecDeque<Vec<Tensor>>,
    /// Every policy decision taken so far (empty under a static policy).
    policy_log: PolicyTrace,
    /// Per-worker/run-level time series, fed once per step with the same
    /// values the networked server records at its barrier — the two stores
    /// are bit-identical for identical runs (minus wall-clock series).
    recorder: RunRecorder,
}

impl Cluster {
    /// Builds a cluster: global model, `config.workers` replicas, and
    /// per-tensor compression contexts on both paths.
    pub fn new(config: ExperimentConfig) -> Self {
        let problem = Problem::build(&config);
        let mut workers: Vec<WorkerReplica> = (0..config.workers)
            .map(|w| WorkerReplica::new(&problem, w))
            .collect();
        let server = ServerCore::new(&problem);
        // An adaptive policy's step-0 decisions exist before any traffic
        // flows; the workers must encode their first push with them
        // (networked workers derive the identical vector from the config).
        if !server.current_decisions().is_empty() {
            for w in &mut workers {
                w.apply_policy(server.current_decisions());
            }
        }
        Cluster {
            workers,
            server,
            compressible_values: problem.compressible_values(),
            data: problem.data,
            test: problem.test,
            straggler_rng: threelc_tensor::rng(config.seed ^ 0x5357_4147), // "STAG"
            pending_deltas: std::collections::VecDeque::new(),
            policy_log: PolicyTrace {
                label: config.policy.label(),
                records: Vec::new(),
            },
            recorder: RunRecorder::new(config.workers),
            config,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Requests up to `threads` codec/aggregation threads cluster-wide
    /// (`0` = one per hardware core): sharded server aggregation plus
    /// chunk-parallel compression in every context. A pure performance
    /// hint — training dynamics are bit-identical at any setting, so the
    /// thread count is deliberately *not* part of [`ExperimentConfig`].
    pub fn set_threads(&mut self, threads: usize) {
        self.server.set_threads(threads);
        for w in &mut self.workers {
            w.set_threads(threads);
        }
    }

    /// The server's full-precision global model.
    pub fn global_model(&self) -> &Network {
        self.server.global()
    }

    /// Worker `w`'s local model replica.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn worker_model(&self, w: usize) -> &Network {
        self.workers[w].model()
    }

    /// Steps executed so far.
    pub fn steps_done(&self) -> u64 {
        self.server.step_number()
    }

    /// Cumulative gradient-push traffic statistics.
    pub fn push_stats(&self) -> &CompressionStats {
        self.server.push_stats()
    }

    /// Cumulative model-delta-pull traffic statistics.
    pub fn pull_stats(&self) -> &CompressionStats {
        self.server.pull_stats()
    }

    /// Every policy decision taken so far, in (step, tensor) order. Empty
    /// records under a static policy.
    pub fn policy_trace(&self) -> &PolicyTrace {
        &self.policy_log
    }

    /// The run's time-series store: per-worker and run-level series fed at
    /// every step, matching the networked server's scrapeable store bit
    /// for bit for identical runs (compare [`RunSeries::deterministic`]
    /// views — the wall-clock `step_seconds` series necessarily differs).
    pub fn series(&self) -> &RunSeries {
        self.recorder.store()
    }

    /// Total parameters in the model.
    pub fn num_params(&self) -> u64 {
        self.server.global().num_params() as u64
    }

    /// Number of values covered by compression (per direction per worker).
    pub fn compressible_values(&self) -> u64 {
        self.compressible_values
    }

    /// Evaluates the global model on the held-out test set (the paper's
    /// dedicated evaluation node reading a model snapshot).
    pub fn evaluate(&self) -> Evaluation {
        Evaluation::of(self.server.global(), &self.test)
    }

    /// Evaluates the global model on a training-data sample (used for the
    /// training-loss curves of Figure 7).
    pub fn training_loss_sample(&self, batch_size: usize) -> f32 {
        let mut rng = threelc_tensor::rng(self.config.seed ^ 0x5A5A ^ self.server.step_number());
        let batch = self.data.sample_train_batch(&mut rng, batch_size);
        self.server.global().loss(&batch)
    }

    /// Executes one bulk-synchronous training step and returns its record.
    pub fn step(&mut self) -> StepRecord {
        let step = self.server.step_number();
        let workers = self.config.workers;
        let (accepted, compute_multiplier) =
            engine::sample_stragglers(&self.config, &mut self.straggler_rng);
        let accepted_count = accepted.iter().filter(|&&a| a).count();

        // All simulated lanes share one process (one clock domain), so
        // trace scopes record into the global buffer with per-lane node
        // labels. Gated up front to keep the label formatting off the hot
        // path when tracing is disabled.
        let tracing = trace::trace_enabled();
        let trace_id = trace::run_trace_id(self.config.seed);
        let worker_scope = |w: usize| {
            tracing.then(|| {
                TraceScope::enter(
                    trace::global_buffer(),
                    &format!("worker{w}"),
                    trace_id,
                    step,
                    w as i64,
                )
            })
        };

        // ---- Worker phase: local compute + gradient push compression.
        // Workers dropped as stragglers skip the step entirely: their
        // gradients never reach the server (backup-worker semantics).
        let mut payloads: Vec<Vec<TensorPayload>> = Vec::with_capacity(workers);
        let mut loss_sum = 0.0f64;
        let mut worker_codec_max = 0.0f64;
        let mut push_bytes = 0u64;
        let mut raw_bytes = 0u64;
        // Per-server traffic for the sharded-model timing (Figure 1:
        // tensor i lives on server i mod servers).
        let servers = self.config.servers.max(1);
        let mut server_bytes = vec![0u64; servers];
        let mut residual_l2 = 0.0f64;
        // The per-step policy multiplier, read before apply_step swaps in
        // the next step's decisions — the networked server reads it at the
        // same point, so the recorded series match bit for bit.
        let step_multiplier = {
            let decisions = self.server.current_decisions();
            if decisions.is_empty() {
                f64::from(engine::base_sparsity(&self.config).value())
            } else {
                f64::from(decisions[0].s.value())
            }
        };
        let mut deltas = Vec::with_capacity(workers);
        for (wi, (w, &participating)) in self.workers.iter_mut().zip(&accepted).enumerate() {
            if !participating {
                payloads.push(Vec::new());
                continue;
            }
            let _scope = worker_scope(wi);
            let step_t0 = std::time::Instant::now();
            let compute_span = TraceSpan::start("compute");
            let (loss, grads) = w.compute(&self.data, self.config.batch_per_worker);
            compute_span.finish();
            loss_sum += loss as f64;
            // quantize/encode spans are recorded inside the compression
            // contexts under this worker's scope.
            let encoded = w.encode_push(grads);
            residual_l2 = residual_l2.max(w.residual_l2());
            worker_codec_max = worker_codec_max.max(encoded.codec_seconds);
            let mut worker_wire = 0u64;
            let mut worker_push = 0u64;
            for (i, payload) in encoded.payloads.iter().enumerate() {
                let bytes = payload.wire_len();
                server_bytes[i % servers] += bytes;
                worker_wire += bytes;
                match payload {
                    TensorPayload::Compressed(_) => {
                        push_bytes += bytes;
                        worker_push += bytes;
                    }
                    TensorPayload::Raw(_) => raw_bytes += bytes,
                }
            }
            deltas.push(WorkerDelta {
                worker: wi,
                wire_bytes: worker_wire,
                ratio: if worker_push > 0 {
                    (self.compressible_values as f64 * 32.0) / (worker_push as f64 * 8.0)
                } else {
                    0.0
                },
                residual_l2: w.residual_l2(),
                loss: f64::from(loss),
                multiplier: step_multiplier,
                rejoins: 0,
                step_seconds: step_t0.elapsed().as_secs_f64(),
                barrier_wait_seconds: 0.0,
            });
            payloads.push(encoded.payloads);
        }
        self.recorder.record_step(step, &deltas);

        // ---- Server phase: decompress, aggregate, update global model,
        // then compress the model deltas for the pull path.
        let server_scope = tracing.then(|| {
            TraceScope::enter(
                trace::global_buffer(),
                "server",
                trace_id,
                step,
                trace::NO_WORKER,
            )
        });
        // `sample_stragglers` keeps `backups < n`, so at least one worker's
        // push is always accepted and the all-rejected error is unreachable
        // in the simulator.
        let out = self
            .server
            .apply_step(&payloads, accepted_count, residual_l2)
            .expect("straggler sampling guarantees at least one accepted push");
        drop(server_scope);

        // Deliver the next step's policy decisions to every replica —
        // including dropped stragglers, exactly as the networked runtime's
        // pull-batch broadcast reaches every connected worker.
        if !out.next_decisions.is_empty() {
            for w in self.workers.iter_mut() {
                w.apply_policy(&out.next_decisions);
            }
        }
        self.policy_log
            .records
            .extend(out.policy_records.iter().copied());

        let mut pull_bytes = 0u64;
        for (i, payload) in out.pulls.iter().enumerate() {
            let bytes = payload.wire_len() * workers as u64;
            if self.config.staleness == 0 {
                server_bytes[i % servers] += bytes;
            }
            match payload {
                TensorPayload::Compressed(_) => pull_bytes += bytes,
                TensorPayload::Raw(_) => raw_bytes += bytes,
            }
        }

        // Apply the deltas that have cleared the staleness pipeline. In BSP
        // (staleness 0) that is this step's own deltas; with staleness k,
        // workers run k steps behind the server's global model and pull
        // transfers overlap subsequent compute.
        self.pending_deltas.push_back(out.step_deltas);
        while self.pending_deltas.len() > self.config.staleness as usize {
            let deltas = self.pending_deltas.pop_front().expect("nonempty");
            for (wi, w) in self.workers.iter_mut().enumerate() {
                let _scope = worker_scope(wi);
                let pull_span = TraceSpan::start("pull");
                w.apply_deltas(&deltas);
                pull_span.finish();
            }
        }

        StepRecord {
            step,
            lr: out.lr,
            loss: (loss_sum / accepted_count as f64) as f32,
            push_bytes,
            pull_bytes,
            raw_bytes,
            compressible_values: self.compressible_values,
            worker_codec_seconds: worker_codec_max,
            server_codec_seconds: out.server_codec_seconds,
            compute_multiplier,
            pull_overlapped: self.config.staleness > 0,
            critical_bytes: server_bytes.iter().copied().max().unwrap_or(0),
            residual_l2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_baselines::SchemeKind;

    fn tiny_config(scheme: SchemeKind) -> ExperimentConfig {
        ExperimentConfig {
            scheme,
            workers: 3,
            batch_per_worker: 8,
            total_steps: 10,
            model_width: 16,
            model_blocks: 1,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn float32_keeps_workers_identical_to_global() {
        // With lossless transport, every worker's local model must equal
        // the global model bit-for-bit after every step.
        let mut cluster = Cluster::new(tiny_config(SchemeKind::Float32));
        for _ in 0..5 {
            cluster.step();
        }
        let global = cluster.global_model().snapshot();
        for w in 0..3 {
            assert_eq!(
                cluster.worker_model(w).snapshot(),
                global,
                "worker {w} diverged under lossless transport"
            );
        }
    }

    #[test]
    fn workers_stay_in_sync_with_each_other_under_lossy_pulls() {
        // Shared pull compression means all workers decode the same
        // payload: they may drift from the global model but never from
        // each other.
        let mut cluster = Cluster::new(tiny_config(SchemeKind::three_lc(1.0)));
        for _ in 0..5 {
            cluster.step();
        }
        let first = cluster.worker_model(0).snapshot();
        for w in 1..3 {
            assert_eq!(
                cluster.worker_model(w).snapshot(),
                first,
                "worker {w} out of sync"
            );
        }
    }

    #[test]
    fn step_records_traffic() {
        let mut cluster = Cluster::new(tiny_config(SchemeKind::Float32));
        let rec = cluster.step();
        let values = cluster.compressible_values();
        assert!(values > 0);
        // Lossless f32: 4 bytes per value per worker per direction.
        assert_eq!(rec.push_bytes, values * 4 * 3);
        assert_eq!(rec.pull_bytes, values * 4 * 3);
        assert!(rec.raw_bytes > 0, "biases travel uncompressed");
        assert!(rec.loss.is_finite());
    }

    #[test]
    fn three_lc_reduces_traffic_by_more_than_10x() {
        let mut a = Cluster::new(tiny_config(SchemeKind::Float32));
        let mut b = Cluster::new(tiny_config(SchemeKind::three_lc(1.0)));
        let (mut fa, mut fb) = (0u64, 0u64);
        for _ in 0..5 {
            let ra = a.step();
            let rb = b.step();
            fa += ra.push_bytes + ra.pull_bytes;
            fb += rb.push_bytes + rb.pull_bytes;
        }
        assert!(
            fb * 10 < fa,
            "3LC bytes {fb} should be <10% of float32 bytes {fa}"
        );
    }

    #[test]
    fn deterministic_dynamics_given_seed() {
        let run = |seed| {
            let mut cluster = Cluster::new(ExperimentConfig {
                seed,
                ..tiny_config(SchemeKind::three_lc(1.5))
            });
            for _ in 0..4 {
                cluster.step();
            }
            cluster.global_model().snapshot()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn small_tensors_bypass_compression() {
        let cluster = Cluster::new(tiny_config(SchemeKind::three_lc(1.0)));
        let threshold = cluster.config().compress_threshold;
        let total: u64 = cluster.num_params();
        let compressible = cluster.compressible_values();
        assert!(compressible < total, "biases must be excluded");
        for p in cluster.global_model().params() {
            if p.len() < threshold {
                // Small tensors are exactly the excluded ones.
                assert!(compressible <= total - p.len() as u64 + compressible);
            }
        }
    }

    #[test]
    fn backup_workers_drop_stragglers_but_stay_in_sync() {
        let mut config = tiny_config(SchemeKind::Float32);
        config.backup_workers = 1;
        config.timing.straggler_jitter = 0.3;
        let mut cluster = Cluster::new(config);
        for _ in 0..5 {
            let rec = cluster.step();
            // Only 2 of 3 workers push: float32 traffic shrinks by 1/3.
            let values = cluster.compressible_values();
            assert_eq!(rec.push_bytes, values * 4 * 2);
            // All 3 still pull.
            assert_eq!(rec.pull_bytes, values * 4 * 3);
            assert!(rec.compute_multiplier > 0.0);
        }
        // Dropped workers still receive deltas: replicas stay identical.
        let first = cluster.worker_model(0).snapshot();
        for w in 1..3 {
            assert_eq!(cluster.worker_model(w).snapshot(), first);
        }
    }

    #[test]
    fn straggler_jitter_inflates_step_gate() {
        let mut config = tiny_config(SchemeKind::Float32);
        config.timing.straggler_jitter = 0.5;
        let mut cluster = Cluster::new(config);
        let gates: Vec<f64> = (0..10).map(|_| cluster.step().compute_multiplier).collect();
        // The max of several lognormal samples is above 1 almost surely.
        assert!(gates.iter().all(|&g| g > 0.0));
        assert!(gates.iter().any(|&g| g > 1.0));
        // And jitter must actually vary step to step.
        assert!(gates.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }

    #[test]
    fn backup_workers_shrink_the_gate() {
        // Cutting the slowest worker lowers the step-gating multiplier in
        // expectation — the whole point of backup workers (§2.1).
        let mean_gate = |backups: usize| {
            let mut config = tiny_config(SchemeKind::Float32);
            config.workers = 6;
            config.backup_workers = backups;
            config.timing.straggler_jitter = 0.4;
            let mut cluster = Cluster::new(config);
            (0..10)
                .map(|_| cluster.step().compute_multiplier)
                .sum::<f64>()
                / 10.0
        };
        assert!(
            mean_gate(2) < mean_gate(0),
            "dropping stragglers must reduce the expected gate"
        );
    }

    #[test]
    fn stale_pulls_delay_worker_updates() {
        let mut bsp_cfg = tiny_config(SchemeKind::Float32);
        bsp_cfg.total_steps = 8;
        let mut stale_cfg = bsp_cfg;
        stale_cfg.staleness = 2;

        let mut bsp = Cluster::new(bsp_cfg);
        let mut stale = Cluster::new(stale_cfg);
        for _ in 0..5 {
            bsp.step();
            stale.step();
        }
        // Global models differ (workers computed on stale replicas), and
        // the stale cluster's workers lag the global model by the pipeline
        // depth.
        assert_eq!(
            bsp.worker_model(0).snapshot(),
            bsp.global_model().snapshot(),
            "BSP workers track the global model"
        );
        assert_ne!(
            stale.worker_model(0).snapshot(),
            stale.global_model().snapshot(),
            "stale workers must lag the global model"
        );
        // Workers still agree with each other.
        assert_eq!(
            stale.worker_model(0).snapshot(),
            stale.worker_model(1).snapshot()
        );
    }

    #[test]
    fn stale_pulls_hide_pull_traffic_in_step_time() {
        let run = |staleness: u32| {
            let mut config = tiny_config(SchemeKind::Float32);
            config.staleness = staleness;
            let mut cluster = Cluster::new(config);
            cluster.step()
        };
        let mut bsp = run(0);
        let mut stale = run(1);
        assert!(!bsp.pull_overlapped);
        assert!(stale.pull_overlapped);
        // Zero the measured codec wall times: they are scheduler-noisy and
        // irrelevant to what this test isolates (the comm term).
        bsp.worker_codec_seconds = 0.0;
        bsp.server_codec_seconds = 0.0;
        stale.worker_codec_seconds = 0.0;
        stale.server_codec_seconds = 0.0;
        let net = crate::NetworkModel::ten_mbps();
        // No overlap budget: isolate the raw comm term.
        let timing = crate::TimingModel {
            overlap_fraction: 0.0,
            ..Default::default()
        };
        assert!(
            stale.seconds_at(&net, &timing, 10.0) < bsp.seconds_at(&net, &timing, 10.0),
            "hiding pulls must shorten slow-network steps"
        );
    }

    #[test]
    fn staleness_zero_matches_previous_bsp_behaviour() {
        // A staleness-0 cluster applies deltas the same step (regression
        // guard for the pipeline refactor).
        let mut cluster = Cluster::new(tiny_config(SchemeKind::three_lc(1.0)));
        for _ in 0..3 {
            cluster.step();
        }
        // Worker replicas must reflect all three updates: training moved.
        let w = cluster.worker_model(0).snapshot();
        let init = Cluster::new(tiny_config(SchemeKind::three_lc(1.0)))
            .worker_model(0)
            .snapshot();
        assert_ne!(w, init);
    }

    #[test]
    fn sharding_reduces_critical_bytes_not_totals() {
        let run = |servers: usize| {
            let mut config = tiny_config(SchemeKind::Float32);
            config.servers = servers;
            let mut cluster = Cluster::new(config);
            cluster.step()
        };
        let one = run(1);
        let four = run(4);
        // Learning dynamics and total traffic are unchanged.
        assert_eq!(one.push_bytes, four.push_bytes);
        assert_eq!(one.pull_bytes, four.pull_bytes);
        assert_eq!(one.raw_bytes, four.raw_bytes);
        // But the busiest-server share shrinks.
        assert_eq!(
            one.critical_bytes,
            one.push_bytes + one.pull_bytes + one.raw_bytes
        );
        assert!(
            four.critical_bytes < one.critical_bytes,
            "sharding must cut the per-server critical path \
             ({} vs {})",
            four.critical_bytes,
            one.critical_bytes
        );
        // And the sharded step is never slower under any link.
        let net = crate::NetworkModel::ten_mbps();
        let timing = crate::TimingModel {
            overlap_fraction: 0.0,
            ..Default::default()
        };
        let (mut a, mut b) = (one, four);
        a.worker_codec_seconds = 0.0;
        a.server_codec_seconds = 0.0;
        b.worker_codec_seconds = 0.0;
        b.server_codec_seconds = 0.0;
        assert!(b.seconds_at(&net, &timing, 10.0) <= a.seconds_at(&net, &timing, 10.0));
    }

    #[test]
    fn sharding_does_not_change_training() {
        let run = |servers: usize| {
            let mut config = tiny_config(SchemeKind::three_lc(1.0));
            config.servers = servers;
            let mut cluster = Cluster::new(config);
            for _ in 0..4 {
                cluster.step();
            }
            cluster.global_model().snapshot()
        };
        assert_eq!(run(1), run(3), "sharding is a placement decision only");
    }

    #[test]
    fn no_jitter_means_unit_multiplier() {
        let mut cluster = Cluster::new(tiny_config(SchemeKind::Float32));
        for _ in 0..3 {
            assert_eq!(cluster.step().compute_multiplier, 1.0);
        }
    }

    #[test]
    fn accessors_and_stats_track_progress() {
        let mut cluster = Cluster::new(tiny_config(SchemeKind::three_lc(1.0)));
        assert_eq!(cluster.steps_done(), 0);
        assert!(cluster.push_stats().payloads == 0);
        let eval0 = cluster.evaluate();
        assert!(eval0.loss.is_finite());
        assert!((0.0..=1.0).contains(&eval0.accuracy));
        for _ in 0..3 {
            cluster.step();
        }
        assert_eq!(cluster.steps_done(), 3);
        // 3 workers × compressible tensors × 3 steps payloads on push;
        // pull compresses once per tensor per step.
        assert!(cluster.push_stats().payloads > 0);
        assert!(cluster.pull_stats().payloads > 0);
        assert!(cluster.push_stats().compression_ratio() > 5.0);
        let sampled = cluster.training_loss_sample(16);
        assert!(sampled.is_finite());
        assert!(cluster.num_params() > cluster.compressible_values());
        assert_eq!(cluster.config().workers, 3);
    }

    #[test]
    fn schedule_policy_adapts_and_keeps_workers_in_sync() {
        let mut config = tiny_config(SchemeKind::three_lc(1.0));
        config.policy =
            threelc_policy::PolicySpec::parse("schedule:from=1.0,to=1.9,over=4").unwrap();
        let mut cluster = Cluster::new(config);
        for _ in 0..6 {
            cluster.step();
        }
        let trace = cluster.policy_trace();
        assert_eq!(trace.label, "schedule:from=1,to=1.9,over=4,layer=0");
        // One record per compressible-or-not tensor per step.
        assert_eq!(trace.records.len() % 6, 0);
        assert!(
            !trace.is_constant(),
            "a warmup schedule must produce a non-constant multiplier sequence"
        );
        // The ramp reaches its target and holds there.
        let last = trace.records.last().unwrap();
        assert!((last.s - 1.9).abs() < 1e-6, "final s = {}", last.s);
        // Shared decisions keep replicas bit-identical to each other.
        let first = cluster.worker_model(0).snapshot();
        for w in 1..3 {
            assert_eq!(
                cluster.worker_model(w).snapshot(),
                first,
                "worker {w} out of sync under an adaptive policy"
            );
        }
    }

    #[test]
    fn feedback_policy_reacts_to_measured_ratio() {
        let mut config = tiny_config(SchemeKind::three_lc(1.0));
        // An intentionally unreachable target ratio: the controller should
        // keep pushing s upward until it hits the clamp.
        config.policy =
            threelc_policy::PolicySpec::parse("feedback:ratio=10000,start=1.2,gain=0.2,hold=0")
                .unwrap();
        let mut cluster = Cluster::new(config);
        for _ in 0..8 {
            cluster.step();
        }
        let trace = cluster.policy_trace();
        assert!(!trace.is_constant());
        let first = trace.records.first().unwrap();
        let last = trace.records.last().unwrap();
        assert!((first.s - 1.2).abs() < 1e-6);
        assert!(last.s > first.s, "s should rise: {} -> {}", first.s, last.s);
        assert!(last.s < 2.0, "clamp must hold");
        // Compressed tensors report real measured ratios; raw (bias)
        // tensors sit at exactly 1.0.
        assert!(trace.records.iter().any(|r| r.achieved_ratio > 5.0));
        assert!(trace.records.iter().all(|r| r.achieved_ratio >= 0.0));
    }

    #[test]
    fn static_policy_matches_pre_policy_behaviour() {
        // The policy subsystem must be invisible when static: identical
        // dynamics to a cluster that never heard of policies, and an empty
        // decision log.
        let mut with_field = tiny_config(SchemeKind::three_lc(1.5));
        with_field.policy = threelc_policy::PolicySpec::Static;
        let mut a = Cluster::new(with_field);
        let mut b = Cluster::new(tiny_config(SchemeKind::three_lc(1.5)));
        for _ in 0..4 {
            a.step();
            b.step();
        }
        assert_eq!(a.global_model().snapshot(), b.global_model().snapshot());
        assert!(a.policy_trace().records.is_empty());
    }

    #[test]
    fn policy_decisions_are_deterministic_across_runs() {
        let run = || {
            let mut config = tiny_config(SchemeKind::three_lc(1.0));
            config.policy =
                threelc_policy::PolicySpec::parse("feedback:ratio=40,start=1.3").unwrap();
            let mut cluster = Cluster::new(config);
            for _ in 0..6 {
                cluster.step();
            }
            (
                cluster.global_model().snapshot(),
                cluster.policy_trace().clone(),
            )
        };
        let (m1, t1) = run();
        let (m2, t2) = run();
        assert_eq!(m1, m2, "models must match bit-for-bit");
        assert_eq!(t1, t2, "decision sequences must match exactly");
    }

    #[test]
    fn traced_sim_yields_a_conserved_critical_path() {
        // The same critical-path ledger the networked server embeds in its
        // report must hold on the simulator's single-clock trace: folded
        // over the global buffer's spans, attribution is conserved and the
        // blame lands on lanes that did real work (sim/net parity for the
        // analyzer — no network spans exist here at all).
        use threelc_obs::{AnalysisConfig, MergedTimeline, RunAnalysis};
        threelc_obs::set_trace_enabled(true);
        let seed = 0xC0_FFEE;
        let mut cluster = Cluster::new(ExperimentConfig {
            seed,
            total_steps: 4,
            ..tiny_config(SchemeKind::three_lc(1.0))
        });
        for _ in 0..4 {
            cluster.step();
        }
        threelc_obs::set_trace_enabled(false);
        // Keep only this run's spans: the buffer is process-global and
        // other tests may trace concurrently under a different trace id.
        let trace_id = trace::run_trace_id(seed);
        let mut dump = trace::global_buffer().drain("sim");
        dump.spans.retain(|s| s.trace == trace_id);
        assert!(!dump.spans.is_empty(), "traced run recorded no spans");

        let timeline = MergedTimeline::build(&[dump]);
        let analysis = RunAnalysis::build(&timeline, &AnalysisConfig::default());
        assert_eq!(analysis.steps.len(), 4);
        assert!(
            analysis.conservation_error < 1e-9,
            "attribution must sum to step wall-clock: residual {}",
            analysis.conservation_error
        );
        for st in &analysis.steps {
            let sum: f64 = st.buckets.iter().map(|b| b.seconds).sum();
            assert!((sum - st.wall_seconds).abs() <= 1e-9 * st.wall_seconds.max(1e-9));
        }
        // Real work is attributed to real lanes.
        let lanes: std::collections::BTreeSet<&str> =
            analysis.totals.iter().map(|b| b.node.as_str()).collect();
        assert!(lanes.iter().any(|l| l.starts_with("worker")));
        assert!(analysis.total_wall_seconds > 0.0);
        // A serial in-process run never trips the network-bottleneck flag.
        assert!(
            analysis.bottlenecks.is_empty(),
            "{:?}",
            analysis.bottlenecks
        );
    }

    #[test]
    fn training_loss_decreases() {
        let mut cluster = Cluster::new(ExperimentConfig {
            total_steps: 60,
            ..tiny_config(SchemeKind::Float32)
        });
        let first: f32 = (0..5).map(|_| cluster.step().loss).sum::<f32>() / 5.0;
        for _ in 0..50 {
            cluster.step();
        }
        let last: f32 = (0..5).map(|_| cluster.step().loss).sum::<f32>() / 5.0;
        assert!(last < first, "loss should fall: first {first}, last {last}");
    }
}
