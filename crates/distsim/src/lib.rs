//! Parameter-server cluster simulator for the 3LC reproduction.
//!
//! The paper evaluates 3LC on a 10-GPU cluster running TensorFlow's
//! `SyncReplicasOptimizer` with Linux Traffic Control emulating 10 Mbps /
//! 100 Mbps / 1 Gbps links (§5.2). This crate is the from-scratch stand-in:
//! an in-process bulk-synchronous parameter server whose *learning
//! dynamics* are exact (real gradients flow through real compression
//! contexts on both the push and pull paths) and whose *wall-clock time* is
//! simulated from first principles — measured codec CPU time plus a
//! calibrated compute constant plus a bandwidth/latency transfer model.
//!
//! The architecture mirrors the paper's Figures 1 and 2:
//!
//! - each of `N` workers holds a local model replica and a per-tensor
//!   **push** compression context for its gradients;
//! - the server averages decompressed gradients, applies SGD-with-momentum
//!   to the global model, and compresses each tensor's **model delta**
//!   once (shared pull compression, Fig. 2b) for all workers to pull;
//! - small tensors (biases — the analog of the paper's batch-normalization
//!   layers) bypass compression, per §5.1.
//!
//! Because training dynamics do not depend on link speed, a single training
//! run records a [`TrainingTrace`] of per-step traffic and codec times from
//! which [`ExperimentResult::total_seconds_at`] recovers the training time
//! under *any* bandwidth — the same extrapolation methodology the paper
//! uses for its 10 Mbps and 100 Mbps numbers.

pub mod cluster;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod netmodel;
pub mod trace;

pub use cluster::Cluster;
pub use config::{AggregateMode, ExperimentConfig, TimingModel};
pub use engine::{
    base_sparsity, EngineError, Problem, ServerCore, TensorPayload, WorkerReplica,
    MAX_COMPRESSED_LANE_WORKERS,
};
pub use experiment::{run_experiment, ExperimentResult};
pub use netmodel::NetworkModel;
pub use threelc_policy::{PolicySpec, PolicyTrace};
pub use trace::{EvalRecord, StepRecord, TrainingTrace};
