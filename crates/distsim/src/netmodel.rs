//! Link bandwidth/latency model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A network link model: bandwidth plus per-transfer latency.
///
/// All cluster traffic funnels through the parameter server's link (the
/// bottleneck in the paper's topology of ten workers and one server), so
/// transfer time for a step is the serialized byte total over this link.
///
/// ```
/// use threelc_distsim::NetworkModel;
/// let net = NetworkModel::ten_mbps();
/// // 1.25 MB at 10 Mbps = 1 second (plus latency).
/// assert!((net.transfer_seconds(1_250_000) - 1.001).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Fixed latency per transfer, in seconds.
    pub latency_s: f64,
}

impl NetworkModel {
    /// Creates a model with the given bandwidth (bits/s) and latency.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive or latency is negative.
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        NetworkModel {
            bandwidth_bps,
            latency_s,
        }
    }

    /// The paper's slowest emulated link: 10 Mbps (WAN-like).
    pub fn ten_mbps() -> Self {
        NetworkModel::new(10e6, 1e-3)
    }

    /// The paper's middle link: 100 Mbps.
    pub fn hundred_mbps() -> Self {
        NetworkModel::new(100e6, 1e-3)
    }

    /// The paper's fastest link: 1 Gbps (datacenter LAN).
    pub fn one_gbps() -> Self {
        NetworkModel::new(1e9, 1e-3)
    }

    /// The three bandwidths the paper evaluates, slowest first, with the
    /// labels used in Table 1.
    pub fn paper_presets() -> [(&'static str, NetworkModel); 3] {
        [
            ("10 Mbps", NetworkModel::ten_mbps()),
            ("100 Mbps", NetworkModel::hundred_mbps()),
            ("1 Gbps", NetworkModel::one_gbps()),
        ]
    }

    /// Seconds to transfer `bytes` over this link (one transfer).
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 * 8.0 / self.bandwidth_bps
    }
}

impl fmt::Display for NetworkModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bandwidth_bps >= 1e9 {
            write!(f, "{:.0} Gbps", self.bandwidth_bps / 1e9)
        } else {
            write!(f, "{:.0} Mbps", self.bandwidth_bps / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_bandwidths() {
        assert_eq!(NetworkModel::ten_mbps().bandwidth_bps, 10e6);
        assert_eq!(NetworkModel::hundred_mbps().bandwidth_bps, 100e6);
        assert_eq!(NetworkModel::one_gbps().bandwidth_bps, 1e9);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let net = NetworkModel::new(8e6, 0.0);
        assert_eq!(net.transfer_seconds(1_000_000), 1.0);
        assert_eq!(net.transfer_seconds(2_000_000), 2.0);
        assert_eq!(net.transfer_seconds(0), 0.0);
    }

    #[test]
    fn latency_added_once() {
        let net = NetworkModel::new(8e6, 0.5);
        assert_eq!(net.transfer_seconds(0), 0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NetworkModel::ten_mbps().to_string(), "10 Mbps");
        assert_eq!(NetworkModel::one_gbps().to_string(), "1 Gbps");
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        NetworkModel::new(0.0, 0.0);
    }
}
