//! Experiment and timing configuration.

use serde::{Deserialize, Serialize};
use threelc_baselines::SchemeKind;
use threelc_policy::PolicySpec;

/// The paper's standard step count was 25,600 (163.84 CIFAR-10 epochs on
/// 10 workers). Our scaled-down standard run: the fractions 25/50/75/100%
/// used in Figures 4–6 apply to this number.
pub const STANDARD_STEPS: u64 = 1200;

/// Converts measured traffic and codec time into simulated wall-clock time.
///
/// The simulated duration of one training step is
///
/// ```text
/// step = compute + codec·scale + max(0, comm − overlap·compute)
/// comm = latency·2 + 8·(push_bytes + pull_bytes)·scale / bandwidth
/// ```
///
/// where `scale = reference_params / model_params` projects our
/// smaller-model measurements onto the paper's ResNet-110 scale (1.73 M
/// parameters), and `overlap` models the communication the framework hides
/// behind forward/backward compute via fine-grained per-layer barriers
/// (§2.1). With the defaults, the 32-bit-float baseline reproduces the
/// paper's ≈0.4 s/step at 1 Gbps and ≈2 orders of magnitude slowdown at
/// 10 Mbps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Seconds of forward+backward compute per step (GPU-calibrated
    /// constant; the paper's ResNet-110 takes ≈0.4 s/step on a GTX 980).
    pub compute_seconds_per_step: f64,
    /// Fraction of compute time that communication can hide behind
    /// (per-layer pipelining overlaps transfers with both passes).
    pub overlap_fraction: f64,
    /// Parameter count the traffic/codec measurements are projected to
    /// (ResNet-110 ≈ 1.73 M).
    pub reference_params: u64,
    /// Straggler jitter: per-worker, per-step compute time is multiplied
    /// by `exp(jitter · N(0,1))`. `0` = perfectly uniform workers. In BSP
    /// the slowest accepted worker gates the step, which is what backup
    /// workers mitigate (§2.1).
    #[serde(default)]
    pub straggler_jitter: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            compute_seconds_per_step: 0.41,
            overlap_fraction: 2.0,
            reference_params: 1_730_000,
            straggler_jitter: 0.0,
        }
    }
}

impl TimingModel {
    /// The measurement-to-paper scale factor for a model of `model_params`
    /// parameters.
    pub fn scale_for(&self, model_params: u64) -> f64 {
        assert!(model_params > 0, "model must have parameters");
        self.reference_params as f64 / model_params as f64
    }
}

/// How the server turns accepted worker payloads into the averaged
/// gradient (the aggregate phase of `ServerCore::apply_step`).
///
/// All three modes are deterministic; [`F32`](AggregateMode::F32) and
/// [`Exact`](AggregateMode::Exact) are additionally bit-identical to each
/// other — exact mode computes the same worker-order float sums from
/// decoded symbols instead of materialized tensors (DESIGN.md §16).
/// [`Compressed`](AggregateMode::Compressed) sums symbols in widened
/// integer lanes per scale group, deferring the float multiply to one
/// pass per group; it is bit-reproducible run-to-run (simulate == serve
/// == rejoin-replay) but not bit-identical to the other two.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateMode {
    /// The seed path: decode every payload to an f32 `Tensor`, then sum.
    F32,
    /// Symbol-domain float accumulation `Σ scale_w · sym_w` per element in
    /// worker order — bit-identical to `F32` without the per-worker tensor
    /// allocations and separate dequantize pass. The default.
    #[default]
    Exact,
    /// Scale-grouped integer symbol summation with one deferred float
    /// multiply per group.
    Compressed,
}

impl AggregateMode {
    /// The mode's lowercase name (`f32`, `exact`, `compressed`), as
    /// accepted by the `--aggregate` CLI flag.
    pub fn name(self) -> &'static str {
        match self {
            AggregateMode::F32 => "f32",
            AggregateMode::Exact => "exact",
            AggregateMode::Compressed => "compressed",
        }
    }

    /// Parses a mode name (the values accepted by `--aggregate`).
    pub fn parse(s: &str) -> Option<AggregateMode> {
        match s {
            "f32" => Some(AggregateMode::F32),
            "exact" => Some(AggregateMode::Exact),
            "compressed" => Some(AggregateMode::Compressed),
            _ => None,
        }
    }
}

impl std::fmt::Display for AggregateMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full configuration of one distributed-training experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The communication-reduction design under test.
    pub scheme: SchemeKind,
    /// Number of workers (the paper uses 10).
    pub workers: usize,
    /// Number of parameter servers the model is partitioned across
    /// (Figure 1; the paper's testbed uses one). Tensors are assigned
    /// round-robin; each server has its own emulated link, so the step's
    /// transfer time is gated by the busiest server.
    #[serde(default = "one_server")]
    pub servers: usize,
    /// Per-worker minibatch size (the paper uses 32).
    pub batch_per_worker: usize,
    /// Total training steps (the learning-rate schedule spans exactly this
    /// count, as in §5.2).
    pub total_steps: u64,
    /// Base (maximum) learning rate of the cosine schedule.
    pub lr_max: f32,
    /// Final (minimum) learning rate of the cosine schedule.
    pub lr_min: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Linear learning-rate warmup steps (Goyal et al.'s large-batch
    /// guideline, which the paper's distributed configuration follows).
    pub warmup_steps: u64,
    /// Backup workers (§2.1): the server advances once `workers −
    /// backup_workers` gradient pushes arrive and drops the stragglers'
    /// updates, as TensorFlow's `SyncReplicasOptimizer` does. `0` = plain
    /// BSP.
    #[serde(default)]
    pub backup_workers: usize,
    /// Pull staleness (§2.1 relaxed barriers): model deltas are applied to
    /// workers `staleness` steps after the server produces them, letting
    /// pull transfers overlap the next steps' compute entirely. `0` = BSP
    /// (the paper's setting). Asynchrony trades convergence for latency
    /// hiding — the paper's background observation that async transmission
    /// "generally requires more training steps ... to similar accuracy".
    #[serde(default)]
    pub staleness: u32,
    /// Residual-block width of the model.
    pub model_width: usize,
    /// Number of residual blocks.
    pub model_blocks: usize,
    /// Tensors with fewer elements than this bypass compression (the
    /// "small layers" exclusion of §5.1).
    pub compress_threshold: usize,
    /// Evaluate the global model on the test set every this many steps
    /// (`0` = only at the end).
    pub eval_every: u64,
    /// Share one compressed pull payload across workers (Fig. 2b). When
    /// `false`, the server compresses each worker's pull separately
    /// (ablation; same traffic, more codec time).
    pub shared_pull_compression: bool,
    /// Master seed: model init, data generation, and worker RNGs derive
    /// from it.
    pub seed: u64,
    /// The adaptive compression policy choosing the sparsity multiplier
    /// per tensor per step. The default, [`PolicySpec::Static`], keeps the
    /// scheme's own multiplier for the whole run (the original behavior);
    /// adaptive specs are evaluated by the server only and broadcast to
    /// workers, so every replica applies the identical decision sequence.
    #[serde(default)]
    pub policy: PolicySpec,
    /// How the server aggregates accepted pushes. The default,
    /// [`AggregateMode::Exact`], is bit-identical to the seed
    /// [`AggregateMode::F32`] path (configs serialized before the field
    /// existed load as `Exact` and reproduce their original models).
    #[serde(default)]
    pub aggregate: AggregateMode,
    /// The simulated-time model.
    pub timing: TimingModel,
}

fn one_server() -> usize {
    1
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scheme: SchemeKind::Float32,
            workers: 10,
            servers: 1,
            batch_per_worker: 32,
            total_steps: STANDARD_STEPS,
            lr_max: 0.1,
            lr_min: 0.001,
            momentum: 0.9,
            weight_decay: 1e-4,
            warmup_steps: 60,
            backup_workers: 0,
            staleness: 0,
            model_width: 64,
            model_blocks: 2,
            compress_threshold: 512,
            eval_every: 0,
            shared_pull_compression: true,
            seed: 42,
            policy: PolicySpec::Static,
            aggregate: AggregateMode::Exact,
            timing: TimingModel::default(),
        }
    }
}

impl ExperimentConfig {
    /// A config for `scheme` with every other field at its default.
    pub fn for_scheme(scheme: SchemeKind) -> Self {
        ExperimentConfig {
            scheme,
            ..Default::default()
        }
    }

    /// Returns a copy running `percent`% of this config's steps (the
    /// 25/50/75/100% sweeps of Figures 4–6). The learning-rate schedule
    /// automatically re-stretches because it always spans `total_steps`.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is 0 or greater than 100.
    pub fn at_percent_steps(&self, percent: u64) -> Self {
        assert!((1..=100).contains(&percent), "percent must be 1..=100");
        ExperimentConfig {
            total_steps: (self.total_steps * percent / 100).max(1),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_hyperparameters() {
        let c = ExperimentConfig::default();
        assert_eq!(c.workers, 10);
        assert_eq!(c.batch_per_worker, 32);
        assert_eq!(c.momentum, 0.9);
        assert_eq!(c.weight_decay, 1e-4);
        assert_eq!(c.lr_max, 0.1);
        assert_eq!(c.lr_min, 0.001);
    }

    #[test]
    fn percent_steps() {
        let c = ExperimentConfig::default();
        assert_eq!(c.at_percent_steps(25).total_steps, c.total_steps / 4);
        assert_eq!(c.at_percent_steps(100).total_steps, c.total_steps);
    }

    #[test]
    #[should_panic(expected = "percent")]
    fn percent_zero_panics() {
        ExperimentConfig::default().at_percent_steps(0);
    }

    #[test]
    fn scale_projects_to_reference() {
        let t = TimingModel::default();
        assert!((t.scale_for(1_730_000) - 1.0).abs() < 1e-12);
        assert!((t.scale_for(173_000) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ExperimentConfig::for_scheme(SchemeKind::three_lc(1.5));
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn serde_roundtrip_with_policy() {
        let mut c = ExperimentConfig::for_scheme(SchemeKind::three_lc(1.5));
        c.policy = PolicySpec::parse("feedback:ratio=20,start=1.5").unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        assert!(back.policy.is_adaptive());
    }

    #[test]
    fn aggregate_mode_names_parse_and_display() {
        for mode in [
            AggregateMode::F32,
            AggregateMode::Exact,
            AggregateMode::Compressed,
        ] {
            assert_eq!(AggregateMode::parse(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(AggregateMode::parse("fp32"), None);
        assert_eq!(AggregateMode::parse("Exact"), None, "names are lowercase");
        assert_eq!(AggregateMode::default(), AggregateMode::Exact);
    }

    #[test]
    fn aggregate_defaults_to_exact_on_old_configs() {
        // Configs serialized before the aggregate field existed must load
        // with the bit-identical default mode.
        let c = ExperimentConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json.replace(",\"aggregate\":\"Exact\"", "");
        assert_ne!(stripped, json, "aggregate field must have been serialized");
        let back: ExperimentConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.aggregate, AggregateMode::Exact);
        // And a compressed-mode config roundtrips.
        let c = ExperimentConfig {
            aggregate: AggregateMode::Compressed,
            ..ExperimentConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.aggregate, AggregateMode::Compressed);
    }

    #[test]
    fn policy_defaults_to_static_on_old_configs() {
        // Configs serialized before the policy field existed must load
        // with the original (static) behavior.
        let c = ExperimentConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json.replace(",\"policy\":\"Static\"", "");
        assert_ne!(stripped, json, "policy field must have been serialized");
        let back: ExperimentConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.policy, PolicySpec::Static);
        assert!(!back.policy.is_adaptive());
    }
}
