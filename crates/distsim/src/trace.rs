//! Per-step training traces and derived traffic/time summaries.

use crate::config::TimingModel;
use crate::netmodel::NetworkModel;
use serde::{Deserialize, Serialize};
use threelc_learning::Evaluation;

/// One training step's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index (0-based).
    pub step: u64,
    /// Learning rate used.
    pub lr: f32,
    /// Mean training loss across workers.
    pub loss: f32,
    /// Compressed gradient-push bytes, summed over workers (compressible
    /// tensors only).
    pub push_bytes: u64,
    /// Compressed model-delta pull bytes, summed over workers.
    pub pull_bytes: u64,
    /// Uncompressed bytes for tensors excluded from compression (both
    /// directions, all workers).
    pub raw_bytes: u64,
    /// State-change values covered by compression, per direction per
    /// worker (i.e. the compressible parameter count).
    pub compressible_values: u64,
    /// Measured worker-side codec seconds (max across workers — they run
    /// in parallel on real hardware).
    pub worker_codec_seconds: f64,
    /// Measured server-side codec seconds (decompress pushes + compress
    /// pulls).
    pub server_codec_seconds: f64,
    /// Compute-time multiplier of the slowest *accepted* worker this step
    /// (1.0 without straggler jitter; see
    /// [`TimingModel::straggler_jitter`]).
    #[serde(default = "default_multiplier")]
    pub compute_multiplier: f64,
    /// Whether this step's pull transfer is fully overlapped with later
    /// compute (stale-pull mode, `staleness > 0`): its bytes then do not
    /// appear on the critical path.
    #[serde(default)]
    pub pull_overlapped: bool,
    /// Bytes through the busiest parameter server this step (equals the
    /// byte total with one server; less when the model is sharded and
    /// servers transfer in parallel). `0` means "not recorded" — the
    /// totals are used instead.
    #[serde(default)]
    pub critical_bytes: u64,
    /// Largest per-worker error-accumulation residual L2 norm after this
    /// step's pushes (0.0 for stateless schemes or old traces). The
    /// anomaly watchdog flags blowups against the run median.
    #[serde(default)]
    pub residual_l2: f64,
}

fn default_multiplier() -> f64 {
    1.0
}

impl StepRecord {
    /// Compressed bits per state-change value for pushes this step
    /// (Figure 9's y-axis).
    pub fn push_bits_per_value(&self, workers: u64) -> f64 {
        if self.compressible_values == 0 {
            return 0.0;
        }
        self.push_bytes as f64 * 8.0 / (self.compressible_values * workers) as f64
    }

    /// Compressed bits per state-change value for pulls this step.
    pub fn pull_bits_per_value(&self, workers: u64) -> f64 {
        if self.compressible_values == 0 {
            return 0.0;
        }
        self.pull_bytes as f64 * 8.0 / (self.compressible_values * workers) as f64
    }

    /// Simulated duration of this step under a given link and timing model.
    ///
    /// `scale` is [`TimingModel::scale_for`] of the model size.
    pub fn seconds_at(&self, net: &NetworkModel, timing: &TimingModel, scale: f64) -> f64 {
        let critical_pull = if self.pull_overlapped {
            0
        } else {
            self.pull_bytes
        };
        let total = self.push_bytes + critical_pull + self.raw_bytes;
        // Sharded models transfer through parallel server links: the
        // busiest server gates the step (but never more than the total).
        let bytes = if self.critical_bytes > 0 {
            self.critical_bytes.min(total)
        } else {
            total
        } as f64
            * scale;
        // One batched push transfer and one batched pull transfer.
        let comm = 2.0 * net.latency_s + bytes * 8.0 / net.bandwidth_bps;
        let codec = (self.worker_codec_seconds + self.server_codec_seconds) * scale;
        let compute = timing.compute_seconds_per_step * self.compute_multiplier;
        let visible_comm = (comm - timing.overlap_fraction * compute).max(0.0);
        compute + codec + visible_comm
    }
}

/// A periodic test-set evaluation of the global model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Step at which the snapshot was taken (after that step's update).
    pub step: u64,
    /// Loss and top-1 accuracy on the held-out test set.
    pub eval: Evaluation,
}

/// The full per-step record of one training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingTrace {
    /// One record per training step, in order.
    pub steps: Vec<StepRecord>,
    /// Periodic test evaluations (always includes the final step when the
    /// run was produced by [`run_experiment`](crate::run_experiment)).
    pub evals: Vec<EvalRecord>,
    /// Anomalies the telemetry watchdog detected over the step records
    /// (see [`run_watchdog`](Self::run_watchdog)). Empty on old traces.
    #[serde(default)]
    pub anomalies: Vec<threelc_obs::Anomaly>,
    /// The compression-policy decision log: per step per tensor, the
    /// sparsity multiplier used, why, and the ratio it achieved. Empty
    /// records under a static policy and on old traces.
    #[serde(default)]
    pub policy: threelc_policy::PolicyTrace,
}

impl TrainingTrace {
    /// Appends one step record and mirrors it into the global metrics
    /// registry (`trace.*` histograms, the `trace.loss` gauge, and the
    /// `trace.steps` counter), so simulated and networked runs feed the
    /// same observability surface.
    pub fn record_step(&mut self, rec: StepRecord) {
        let reg = threelc_obs::global();
        reg.histogram("trace.push_bytes")
            .record(rec.push_bytes as f64);
        reg.histogram("trace.pull_bytes")
            .record(rec.pull_bytes as f64);
        reg.histogram("trace.raw_bytes")
            .record(rec.raw_bytes as f64);
        reg.gauge("trace.loss").set(rec.loss as f64);
        reg.counter("trace.steps").add(1);
        self.steps.push(rec);
    }

    /// Total compressed+raw traffic in bytes over the run.
    pub fn total_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.push_bytes + s.pull_bytes + s.raw_bytes)
            .sum()
    }

    /// Average compressed bits per state-change value across the run,
    /// counting both directions (Table 2's right column).
    pub fn average_bits_per_value(&self, workers: u64) -> f64 {
        let bytes: u64 = self.steps.iter().map(|s| s.push_bytes + s.pull_bytes).sum();
        let values: u64 = self
            .steps
            .iter()
            .map(|s| s.compressible_values * workers * 2)
            .sum();
        if values == 0 {
            0.0
        } else {
            bytes as f64 * 8.0 / values as f64
        }
    }

    /// End-to-end compression ratio versus 32-bit floats (Table 2's left
    /// column).
    pub fn compression_ratio(&self, workers: u64) -> f64 {
        let b = self.average_bits_per_value(workers);
        if b == 0.0 {
            0.0
        } else {
            32.0 / b
        }
    }

    /// Total simulated training seconds under a link/timing model.
    pub fn total_seconds_at(&self, net: &NetworkModel, timing: &TimingModel, scale: f64) -> f64 {
        self.steps
            .iter()
            .map(|s| s.seconds_at(net, timing, scale))
            .sum()
    }

    /// The last recorded evaluation, if any.
    pub fn final_eval(&self) -> Option<&EvalRecord> {
        self.evals.last()
    }

    /// Runs the step-level anomaly watchdog (compression-ratio drift and
    /// residual-L2 blowups against the run median) over the recorded
    /// steps and stores the findings in [`anomalies`](Self::anomalies).
    /// Deterministic: a simulated and a networked run of the same
    /// configuration flag the same steps.
    pub fn run_watchdog(&mut self, workers: u64) {
        let stats: Vec<threelc_obs::StepStats> = self
            .steps
            .iter()
            .map(|s| {
                let bits = s.push_bits_per_value(workers);
                threelc_obs::StepStats {
                    step: s.step,
                    compression_ratio: if bits > 0.0 { 32.0 / bits } else { 0.0 },
                    residual_l2: s.residual_l2,
                }
            })
            .collect();
        self.anomalies =
            threelc_obs::watchdog::check_steps(&stats, &threelc_obs::WatchdogConfig::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(push: u64, pull: u64, raw: u64, values: u64) -> StepRecord {
        StepRecord {
            step: 0,
            lr: 0.1,
            loss: 1.0,
            push_bytes: push,
            pull_bytes: pull,
            raw_bytes: raw,
            compressible_values: values,
            worker_codec_seconds: 0.0,
            server_codec_seconds: 0.0,
            compute_multiplier: 1.0,
            pull_overlapped: false,
            critical_bytes: 0,
            residual_l2: 0.0,
        }
    }

    #[test]
    fn bits_per_value() {
        // 10 workers, 100 values each, 1000 bytes pushed total
        // → 8000 bits / 1000 values = 8 bits/value.
        let r = record(1000, 500, 0, 100);
        assert_eq!(r.push_bits_per_value(10), 8.0);
        assert_eq!(r.pull_bits_per_value(10), 4.0);
    }

    #[test]
    fn step_seconds_additive_model() {
        let r = StepRecord {
            worker_codec_seconds: 0.1,
            server_codec_seconds: 0.1,
            ..record(500_000, 500_000, 0, 1)
        };
        let net = NetworkModel::new(8e6, 0.0);
        let timing = TimingModel {
            compute_seconds_per_step: 0.5,
            overlap_fraction: 0.0,
            reference_params: 1,
            ..Default::default()
        };
        // comm = 1e6 bytes → 1 s; codec 0.2 s; compute 0.5 s.
        let s = r.seconds_at(&net, &timing, 1.0);
        assert!((s - 1.7).abs() < 1e-9, "step seconds {s}");
    }

    #[test]
    fn overlap_hides_communication() {
        let r = record(500_000, 500_000, 0, 1);
        let net = NetworkModel::new(8e6, 0.0);
        let timing = TimingModel {
            compute_seconds_per_step: 0.5,
            overlap_fraction: 2.0,
            reference_params: 1,
            ..Default::default()
        };
        // comm 1 s, hidden budget 1 s → fully hidden.
        let s = r.seconds_at(&net, &timing, 1.0);
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn trace_aggregates() {
        let trace = TrainingTrace {
            steps: vec![record(1000, 1000, 100, 100), record(3000, 1000, 100, 100)],
            ..Default::default()
        };
        assert_eq!(trace.total_bytes(), 6200);
        // bytes = 6000, values = 100·10·2·2 = 4000 → 12 bits/value.
        assert_eq!(trace.average_bits_per_value(10), 12.0);
        assert!((trace.compression_ratio(10) - 32.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = TrainingTrace::default();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.average_bits_per_value(10), 0.0);
        assert!(t.final_eval().is_none());
    }

    #[test]
    fn record_step_feeds_trace_and_global_metrics() {
        // Other tests in the process share the global registry, so assert
        // deltas rather than absolute values.
        let reg = threelc_obs::global();
        let steps_before = reg.counter("trace.steps").get();
        let push_before = reg.histogram("trace.push_bytes").count();
        let mut trace = TrainingTrace::default();
        trace.record_step(record(1000, 500, 100, 100));
        assert_eq!(trace.steps.len(), 1);
        assert_eq!(reg.counter("trace.steps").get(), steps_before + 1);
        assert_eq!(reg.histogram("trace.push_bytes").count(), push_before + 1);
    }

    #[test]
    fn watchdog_flags_drift_and_blowup_and_is_deterministic() {
        let mut trace = TrainingTrace::default();
        for step in 0..6 {
            let mut r = record(1000, 500, 0, 1000);
            r.step = step;
            r.residual_l2 = if step == 4 { 50.0 } else { 1.0 };
            if step == 2 {
                r.push_bytes = 5000; // ratio 40x → 8x, past the 2x drift floor
            }
            trace.steps.push(r);
        }
        trace.run_watchdog(10);
        let kinds: Vec<&str> = trace.anomalies.iter().map(|a| a.kind.as_str()).collect();
        assert_eq!(kinds, ["ratio-drift", "residual-blowup"]);
        assert_eq!(trace.anomalies[0].step, 2);
        assert_eq!(trace.anomalies[1].step, 4);
        let again = {
            let mut t = trace.clone();
            t.run_watchdog(10);
            t.anomalies
        };
        assert_eq!(again, trace.anomalies);
    }

    #[test]
    fn traces_without_a_policy_section_still_load() {
        // Traces serialized before the policy engine existed.
        let mut trace = TrainingTrace::default();
        trace.steps.push(record(1000, 500, 100, 100));
        let json = serde_json::to_string(&trace).unwrap();
        let stripped = json.replace(",\"policy\":{\"label\":\"\",\"records\":[]}", "");
        assert_ne!(stripped, json, "policy section must have been serialized");
        let back: TrainingTrace = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, trace);
        assert!(back.policy.records.is_empty());
    }

    #[test]
    fn faster_network_never_slower() {
        let r = record(10_000, 10_000, 1000, 100);
        let timing = TimingModel::default();
        let slow = r.seconds_at(&NetworkModel::ten_mbps(), &timing, 10.0);
        let fast = r.seconds_at(&NetworkModel::one_gbps(), &timing, 10.0);
        assert!(fast <= slow);
    }
}
