//! The shared parameter-server step engine.
//!
//! Extracted from [`Cluster`](crate::Cluster) so the in-process simulator
//! and the TCP runtime in `threelc-net` execute the *same* arithmetic: the
//! same seeds, the same compression contexts, the same worker-order
//! aggregation, the same optimizer updates. A networked run and a simulated
//! run of one configuration therefore produce bit-identical models.
//!
//! The split follows the deployment boundary:
//!
//! - [`Problem`] — everything both sides derive deterministically from the
//!   configuration (dataset, test batch, initial model, tensor shapes,
//!   compression eligibility);
//! - [`WorkerReplica`] — one worker's state: a model replica, its
//!   data-sampling RNG, and its per-tensor push compression contexts;
//! - [`ServerCore`] — the server's state: the global model, the optimizer,
//!   per-worker push *decode* contexts, and the shared pull contexts.
//!
//! The server decodes pushes with its own mirror contexts rather than the
//! workers' contexts. That is sound because every scheme's `decompress` is
//! a pure function of the payload and the tensor shape: compression state
//! (error-accumulation buffers, RNG draws) only affects `compress`.

use crate::config::{AggregateMode, ExperimentConfig};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use threelc::kernels::{self, CodecImpl};
use threelc::parallel::{self, split_off_ranges, split_ranges};
use threelc::{CompressionStats, Compressor, SparsityMultiplier};
use threelc_baselines::{build_compressor, SchemeKind};
use threelc_learning::{models, Batch, LrSchedule, Network, SgdMomentum, SyntheticImages};
use threelc_obs::{trace, Histogram};
use threelc_policy::{Decision, Policy, PolicyRecord, TensorObs};
use threelc_tensor::{Rng, Shape, Tensor};

/// Seed of the synthetic dataset (shared by every node).
pub fn data_seed(config: &ExperimentConfig) -> u64 {
    config.seed.wrapping_mul(31).wrapping_add(7)
}

/// Seed of worker `w`'s data-sampling RNG.
pub fn worker_rng_seed(config: &ExperimentConfig, w: usize) -> u64 {
    config.seed.wrapping_add(1000 + w as u64)
}

/// Seed of worker `w`'s push compression context for tensor `i`.
pub fn push_ctx_seed(config: &ExperimentConfig, w: usize, i: usize) -> u64 {
    config.seed ^ (w as u64) << 32 ^ i as u64
}

/// Seed of the shared pull compression context for tensor `i`.
pub fn pull_ctx_seed(config: &ExperimentConfig, i: usize) -> u64 {
    config.seed ^ 0x5055_4C4C_0000_0000 ^ i as u64
}

/// The scheme's own sparsity multiplier — what a `Static` policy keeps
/// and adaptive policies start reasoning from.
pub fn base_sparsity(config: &ExperimentConfig) -> SparsityMultiplier {
    match config.scheme {
        SchemeKind::ThreeLc { sparsity, .. } => {
            SparsityMultiplier::new(sparsity).unwrap_or_default()
        }
        _ => SparsityMultiplier::default(),
    }
}

/// The deterministic problem instance every node derives from the
/// configuration: dataset, held-out test batch, initial model, and the
/// per-tensor compression plan.
pub struct Problem {
    /// The configuration this problem was built from.
    pub config: ExperimentConfig,
    /// The synthetic training dataset.
    pub data: SyntheticImages,
    /// The held-out evaluation batch.
    pub test: Batch,
    /// The initial model (server global and every replica start here).
    pub init: Network,
    /// Parameter tensor shapes, in parameter order.
    pub shapes: Vec<Shape>,
    /// Whether each tensor meets the compression threshold (§5.1's
    /// small-layer exclusion).
    pub compressible: Vec<bool>,
}

impl Problem {
    /// Derives the problem instance from a configuration.
    pub fn build(config: &ExperimentConfig) -> Self {
        let data = SyntheticImages::standard(data_seed(config));
        let spec = data.spec();
        let init =
            models::residual_mlp(&spec, config.model_width, config.model_blocks, config.seed);
        let shapes: Vec<_> = init.params().iter().map(|p| p.shape().clone()).collect();
        let compressible: Vec<bool> = init
            .params()
            .iter()
            .map(|p| p.len() >= config.compress_threshold)
            .collect();
        let test = data.test_batch();
        Problem {
            config: *config,
            data,
            test,
            init,
            shapes,
            compressible,
        }
    }

    /// Number of parameter tensors.
    pub fn num_tensors(&self) -> usize {
        self.shapes.len()
    }

    /// Number of values covered by compression (per direction per worker).
    pub fn compressible_values(&self) -> u64 {
        self.shapes
            .iter()
            .zip(&self.compressible)
            .filter(|(_, &c)| c)
            .map(|(s, _)| s.num_elements() as u64)
            .sum()
    }

    /// Builds worker `w`'s per-tensor push compression contexts.
    pub fn push_ctxs(&self, w: usize) -> Vec<Option<Box<dyn Compressor>>> {
        self.ctxs(|i| push_ctx_seed(&self.config, w, i))
    }

    /// Builds the per-tensor pull compression contexts (shared across
    /// workers, Fig. 2b). Decode-only users may build these too: decoding
    /// never consumes context state.
    pub fn pull_ctxs(&self) -> Vec<Option<Box<dyn Compressor>>> {
        self.ctxs(|i| pull_ctx_seed(&self.config, i))
    }

    fn ctxs(&self, seed: impl Fn(usize) -> u64) -> Vec<Option<Box<dyn Compressor>>> {
        self.shapes
            .iter()
            .zip(&self.compressible)
            .enumerate()
            .map(|(i, (shape, &c))| {
                c.then(|| build_compressor(&self.config.scheme, shape.clone(), seed(i)))
            })
            .collect()
    }
}

/// A typed server-step failure ([`ServerCore::apply_step`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Every worker's push was rejected this step, leaving nothing to
    /// aggregate. BSP callers that gate on `workers − backup_workers`
    /// accepted pushes can never hit this; runtimes that drop payloads on
    /// validation failures (the networked server under fault injection)
    /// surface it as a named run error instead of a panic.
    NoAcceptedPushes {
        /// The step that had no accepted pushes.
        step: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoAcceptedPushes { step } => write!(
                f,
                "step {step}: every worker's push was rejected; nothing to aggregate"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// A per-tensor state-change payload: compressed wire bytes, or the raw
/// tensor for small layers excluded from compression.
pub enum TensorPayload {
    /// Output of a compression context.
    Compressed(Vec<u8>),
    /// An uncompressed tensor (transferred as little-endian `f32`s).
    Raw(Tensor),
}

impl TensorPayload {
    /// Bytes this payload occupies on the wire.
    pub fn wire_len(&self) -> u64 {
        match self {
            TensorPayload::Compressed(wire) => wire.len() as u64,
            TensorPayload::Raw(t) => t.len() as u64 * 4,
        }
    }
}

/// The result of compressing one worker's gradients.
pub struct EncodedPush {
    /// One payload per parameter tensor, in parameter order.
    pub payloads: Vec<TensorPayload>,
    /// Measured compression CPU seconds.
    pub codec_seconds: f64,
}

/// One worker's state: a local model replica, a data-sampling RNG, and a
/// push compression context per compressible tensor.
pub struct WorkerReplica {
    model: Network,
    rng: Rng,
    push_ctxs: Vec<Option<Box<dyn Compressor>>>,
    /// Cached handle into the global registry — the sharded registry lock
    /// is only touched here, at construction, never per step.
    encode_seconds: Arc<Histogram>,
}

impl WorkerReplica {
    /// Builds worker `w`'s replica from the shared problem instance.
    pub fn new(problem: &Problem, w: usize) -> Self {
        WorkerReplica {
            model: problem.init.clone(),
            rng: threelc_tensor::rng(worker_rng_seed(&problem.config, w)),
            push_ctxs: problem.push_ctxs(w),
            encode_seconds: threelc_obs::global().histogram("engine.encode_push_seconds"),
        }
    }

    /// The local model replica.
    pub fn model(&self) -> &Network {
        &self.model
    }

    /// Consumes the replica, returning its final model.
    pub fn into_model(self) -> Network {
        self.model
    }

    /// Samples a minibatch and computes the local loss and gradients.
    pub fn compute(
        &mut self,
        data: &SyntheticImages,
        batch_per_worker: usize,
    ) -> (f32, Vec<Tensor>) {
        let batch = data.sample_train_batch(&mut self.rng, batch_per_worker);
        self.model.loss_and_gradients(&batch)
    }

    /// Runs each gradient through its push compression context (or passes
    /// it through raw), measuring codec CPU time.
    pub fn encode_push(&mut self, grads: Vec<Tensor>) -> EncodedPush {
        let mut payloads = Vec::with_capacity(grads.len());
        let mut codec_seconds = 0.0f64;
        for (i, grad) in grads.into_iter().enumerate() {
            match &mut self.push_ctxs[i] {
                Some(ctx) => {
                    let t0 = Instant::now();
                    let wire = ctx.compress(&grad).expect("gradient shape matches context");
                    codec_seconds += t0.elapsed().as_secs_f64();
                    payloads.push(TensorPayload::Compressed(wire));
                }
                None => payloads.push(TensorPayload::Raw(grad)),
            }
        }
        self.encode_seconds.record(codec_seconds);
        EncodedPush {
            payloads,
            codec_seconds,
        }
    }

    /// Requests up to `threads` codec worker threads for this replica's
    /// push compression contexts (`0` = one per hardware core). A pure
    /// performance hint: payloads stay bit-identical at any setting.
    pub fn set_threads(&mut self, threads: usize) {
        for ctx in self.push_ctxs.iter_mut().flatten() {
            ctx.set_threads(threads);
        }
    }

    /// Applies per-tensor policy decisions to this replica's push
    /// compression contexts, effective from the next `encode_push`.
    /// Decisions always come from the server (directly in the simulator,
    /// over the wire in the networked runtime) — replicas never evaluate
    /// the policy themselves, so they cannot drift.
    pub fn apply_policy(&mut self, decisions: &[Decision]) {
        for (ctx, d) in self.push_ctxs.iter_mut().zip(decisions) {
            if let Some(ctx) = ctx {
                ctx.set_sparsity(d.s);
            }
        }
    }

    /// The L2 norm of this replica's error-accumulation residual, summed
    /// over its push compression contexts (0.0 for stateless schemes).
    /// Feeds the per-step `residual_l2` trace field the anomaly watchdog
    /// monitors for blowups.
    pub fn residual_l2(&self) -> f64 {
        self.push_ctxs
            .iter()
            .flatten()
            .map(|ctx| ctx.residual_sq())
            .sum::<f64>()
            .sqrt()
    }

    /// Applies decoded model deltas to the local replica.
    ///
    /// # Panics
    ///
    /// Panics if the delta shapes do not match the model's parameters.
    pub fn apply_deltas(&mut self, deltas: &[Tensor]) {
        for (i, delta) in deltas.iter().enumerate() {
            self.model.params_mut()[i]
                .add_assign(delta)
                .expect("same shapes");
        }
    }
}

/// The output of one server step: what the workers pull, and the decoded
/// deltas they will apply.
pub struct ServerStepOutput {
    /// Learning rate used this step (warmup-scaled cosine schedule).
    pub lr: f32,
    /// Per-tensor pull payloads (one shared payload per tensor).
    pub pulls: Vec<TensorPayload>,
    /// Decoded deltas — exactly what every worker obtains by decoding
    /// `pulls` (identical by decode purity).
    pub step_deltas: Vec<Tensor>,
    /// Measured server-side codec CPU seconds (push decode + pull codec).
    pub server_codec_seconds: f64,
    /// The policy decisions that governed **this** step, resolved against
    /// the step's observed telemetry (empty when the policy is static).
    pub policy_records: Vec<PolicyRecord>,
    /// The decisions for the **next** step. The caller must deliver these
    /// to every worker replica (the networked runtime broadcasts them with
    /// the pull batch) so pushes stay bit-identical across runtimes. Empty
    /// when the policy is static.
    pub next_decisions: Vec<Decision>,
}

/// The server's state: the global model, optimizer, decode contexts for
/// every worker's pushes, and the shared pull compression contexts.
pub struct ServerCore {
    config: ExperimentConfig,
    global: Network,
    prev_global: Vec<Tensor>,
    /// Per-*tensor*, per-worker push decode contexts (mirrors of the
    /// workers' compression contexts; decode is pure, so mirrors decode
    /// identically). Tensor-major so sharded aggregation can hand each
    /// shard a disjoint `&mut` block of tensor rows.
    decode_ctxs: Vec<Vec<Option<Box<dyn Compressor>>>>,
    pull_ctxs: Vec<Option<Box<dyn Compressor>>>,
    optimizer: SgdMomentum,
    schedule: LrSchedule,
    shapes: Vec<Shape>,
    push_stats: CompressionStats,
    pull_stats: CompressionStats,
    /// The adaptive policy, if the config asks for one. Evaluated *only*
    /// here — workers receive decisions, never compute them — so the
    /// decision sequence is a pure function of (step, prior telemetry)
    /// and the simulator and networked runtime cannot diverge.
    policy: Option<Box<dyn Policy>>,
    /// Decisions governing the upcoming step (empty when static).
    current_decisions: Vec<Decision>,
    step: u64,
    /// Shard-thread budget for [`Self::apply_step`] (1 = serial).
    threads: usize,
    /// Cached handle into the global registry (see [`WorkerReplica`]).
    apply_seconds: Arc<Histogram>,
    /// `engine.shard.busy_seconds` — per-shard busy time of sharded steps.
    shard_busy: Arc<Histogram>,
    /// `engine.shard.lock_wait_seconds` — time shards spent waiting on the
    /// striped stats accumulators (the contention signal).
    shard_lock_wait: Arc<Histogram>,
    /// `engine.aggregate.symbol_decode_seconds` — payload→symbol (or
    /// payload→tensor, in f32 mode) decode time per aggregation pass (per
    /// shard when sharded). With `engine.aggregate.accumulate_seconds`
    /// this splits the aggregate phase so `threelc analyze` can attribute
    /// symbol-domain wins to the right half.
    aggregate_decode_seconds: Arc<Histogram>,
    /// `engine.aggregate.accumulate_seconds` — pure accumulate arithmetic
    /// (dequantize-sum, integer lane sums, float adds) per aggregation
    /// pass (per shard when sharded).
    aggregate_accumulate_seconds: Arc<Histogram>,
}

/// The largest accepted-worker count compressed-mode aggregation can sum
/// in u16 symbol lanes: each worker contributes a biased digit ≤ 2 per
/// lane, so 32767 workers max out at 65534 < 2¹⁶. Bigger steps fall back
/// to exact mode (deterministically — the choice depends only on the
/// accepted count, which replays identically).
pub const MAX_COMPRESSED_LANE_WORKERS: usize = 32767;

/// Reusable scratch for one aggregation pass: symbol buffers, scale-group
/// tables, and widened integer lanes. One instance per pass (per shard
/// when sharded) — tensors reuse the allocations instead of paying a
/// per-worker `Tensor` per tensor per step like the f32 path.
#[derive(Default)]
struct AggScratch {
    /// Current worker's decoded symbols (exact mode).
    syms: Vec<i8>,
    /// Per-accepted-member symbol buffers (compressed mode pass 1).
    pool: Vec<Vec<i8>>,
    /// Per-member payload scale, in worker order (compressed mode).
    scales: Vec<f32>,
    /// Distinct scale bit patterns in first-occurrence worker order: the
    /// scale-grouping rule (DESIGN.md §16). Grouping by *bit pattern*
    /// keeps `0.0` and `-0.0` apart, which preserves signed-zero products.
    groups: Vec<u32>,
    /// Member → group index, parallel to `scales`.
    membership: Vec<usize>,
    /// Widened u16 symbol lanes, 4 per u64 word.
    lanes: Vec<u64>,
}

/// The aggregate phase's two-way timing split (DESIGN.md §16).
#[derive(Default, Clone, Copy)]
struct AggTimings {
    /// Payload→symbol decode (payload→tensor in f32 mode).
    decode: f64,
    /// Accumulate arithmetic: dequantize-sums, lane sums, float adds.
    accumulate: f64,
}

/// Decodes and averages one tensor's accepted pushes under `mode`.
///
/// `ctx_row` holds the tensor's per-worker decode contexts; `stats`,
/// `codec`, and `timings` accumulate the pass's bookkeeping. The caller
/// guarantees at least one accepted worker ([`ServerCore::apply_step`]
/// returns [`EngineError::NoAcceptedPushes`] otherwise) and, for
/// [`AggregateMode::Compressed`], at most [`MAX_COMPRESSED_LANE_WORKERS`]
/// of them.
#[allow(clippy::too_many_arguments)] // one bookkeeping sink per output, shared by both shard layouts
fn aggregate_tensor(
    mode: AggregateMode,
    imp: CodecImpl,
    shape: &Shape,
    ctx_row: &[Option<Box<dyn Compressor>>],
    payloads: &[Vec<TensorPayload>],
    i: usize,
    accepted_count: usize,
    scratch: &mut AggScratch,
    stats: &mut CompressionStats,
    codec: &mut f64,
    timings: &mut AggTimings,
) -> Tensor {
    match mode {
        AggregateMode::F32 => aggregate_tensor_f32(
            shape,
            ctx_row,
            payloads,
            i,
            accepted_count,
            stats,
            codec,
            timings,
        ),
        AggregateMode::Exact => aggregate_tensor_exact(
            imp,
            shape,
            ctx_row,
            payloads,
            i,
            accepted_count,
            scratch,
            stats,
            codec,
            timings,
        ),
        AggregateMode::Compressed => aggregate_tensor_compressed(
            imp,
            shape,
            ctx_row,
            payloads,
            i,
            accepted_count,
            scratch,
            stats,
            codec,
            timings,
        ),
    }
}

/// The seed aggregation path: decode every accepted payload to an f32
/// [`Tensor`], sum in worker order, divide by the accepted count.
#[allow(clippy::too_many_arguments)]
fn aggregate_tensor_f32(
    shape: &Shape,
    ctx_row: &[Option<Box<dyn Compressor>>],
    payloads: &[Vec<TensorPayload>],
    i: usize,
    accepted_count: usize,
    stats: &mut CompressionStats,
    codec: &mut f64,
    timings: &mut AggTimings,
) -> Tensor {
    let mut sum: Option<Tensor> = None;
    for (w, worker_payloads) in payloads.iter().enumerate() {
        if worker_payloads.is_empty() {
            continue; // dropped straggler
        }
        let grad = match &worker_payloads[i] {
            TensorPayload::Compressed(wire) => {
                let t0 = Instant::now();
                let g = ctx_row[w]
                    .as_ref()
                    .expect("compressed payload implies a context")
                    .decompress(wire)
                    .expect("payload produced by matching context");
                let dt = t0.elapsed().as_secs_f64();
                *codec += dt;
                timings.decode += dt;
                stats.record(shape.num_elements(), wire.len());
                g
            }
            TensorPayload::Raw(grad) => grad.clone(),
        };
        let a0 = Instant::now();
        match &mut sum {
            Some(s) => s.add_assign(&grad).expect("same shapes"),
            None => sum = Some(grad),
        }
        timings.accumulate += a0.elapsed().as_secs_f64();
    }
    let mut avg = sum.expect("caller guarantees an accepted worker");
    avg.scale_inplace(1.0 / accepted_count as f32);
    avg
}

/// Exact-mode aggregation: decode payloads to i8 symbols and perform the
/// same per-element worker-order float accumulation `Σ scale_w · sym_w`
/// the f32 path computes — bit-identical to it (each term is the one IEEE
/// multiply `sym as f32 · scale` the dequantizer would have produced, and
/// the adds run in the same order), without per-worker tensor
/// allocations or a separate dequantize pass. The first accepted worker
/// *assigns* (preserving `-0.0` products exactly as moving the first
/// decoded tensor into the sum did); schemes without a symbol form fall
/// back to dense decode per payload, accumulating the same float values.
#[allow(clippy::too_many_arguments)]
fn aggregate_tensor_exact(
    imp: CodecImpl,
    shape: &Shape,
    ctx_row: &[Option<Box<dyn Compressor>>],
    payloads: &[Vec<TensorPayload>],
    i: usize,
    accepted_count: usize,
    scratch: &mut AggScratch,
    stats: &mut CompressionStats,
    codec: &mut f64,
    timings: &mut AggTimings,
) -> Tensor {
    let n = shape.num_elements();
    let mut acc = vec![0f32; n];
    let mut first = true;
    for (w, worker_payloads) in payloads.iter().enumerate() {
        if worker_payloads.is_empty() {
            continue; // dropped straggler
        }
        match &worker_payloads[i] {
            TensorPayload::Compressed(wire) => {
                let ctx = ctx_row[w]
                    .as_ref()
                    .expect("compressed payload implies a context");
                let t0 = Instant::now();
                match ctx
                    .decompress_symbols(wire, &mut scratch.syms)
                    .expect("payload produced by matching context")
                {
                    Some(scale) => {
                        let dt = t0.elapsed().as_secs_f64();
                        *codec += dt;
                        timings.decode += dt;
                        stats.record(n, wire.len());
                        let a0 = Instant::now();
                        if first {
                            kernels::dequant_assign(imp, &scratch.syms, scale, &mut acc);
                        } else {
                            kernels::dequant_add(imp, &scratch.syms, scale, &mut acc);
                        }
                        timings.accumulate += a0.elapsed().as_secs_f64();
                    }
                    None => {
                        // No symbol form (f32/baseline schemes): dense
                        // decode, then accumulate the identical floats.
                        let g = ctx
                            .decompress(wire)
                            .expect("payload produced by matching context");
                        let dt = t0.elapsed().as_secs_f64();
                        *codec += dt;
                        timings.decode += dt;
                        stats.record(n, wire.len());
                        let a0 = Instant::now();
                        accumulate_dense(g.as_slice(), first, &mut acc);
                        timings.accumulate += a0.elapsed().as_secs_f64();
                    }
                }
            }
            TensorPayload::Raw(grad) => {
                let a0 = Instant::now();
                accumulate_dense(grad.as_slice(), first, &mut acc);
                timings.accumulate += a0.elapsed().as_secs_f64();
            }
        }
        first = false;
    }
    let a0 = Instant::now();
    let mut avg = Tensor::from_vec(acc, shape.clone());
    avg.scale_inplace(1.0 / accepted_count as f32);
    timings.accumulate += a0.elapsed().as_secs_f64();
    avg
}

/// `acc = xs` (first worker) or `acc += xs`: the dense half of exact-mode
/// accumulation, element-for-element what `Tensor::add_assign` (and
/// moving the first tensor into the sum) computes.
fn accumulate_dense(xs: &[f32], first: bool, acc: &mut [f32]) {
    if first {
        acc.copy_from_slice(xs);
    } else {
        for (a, &x) in acc.iter_mut().zip(xs) {
            *a += x;
        }
    }
}

/// Compressed-mode aggregation: group accepted workers by payload scale
/// (bit pattern, first-occurrence worker order), sum each group's symbols
/// in widened u16 integer lanes — exact, order-free integer arithmetic —
/// and defer the float multiply to one drain pass per group. Group
/// results combine in group order, so the whole computation is a
/// deterministic function of the payloads alone: simulate, serve, and
/// rejoin-replay reproduce it bit for bit (though it is *not*
/// bit-identical to exact/f32 mode, whose float sums associate
/// per-worker). Tensors whose payloads have no symbol form (raw small
/// layers, baseline schemes) take the exact path instead.
#[allow(clippy::too_many_arguments)]
fn aggregate_tensor_compressed(
    imp: CodecImpl,
    shape: &Shape,
    ctx_row: &[Option<Box<dyn Compressor>>],
    payloads: &[Vec<TensorPayload>],
    i: usize,
    accepted_count: usize,
    scratch: &mut AggScratch,
    stats: &mut CompressionStats,
    codec: &mut f64,
    timings: &mut AggTimings,
) -> Tensor {
    let n = shape.num_elements();
    // Probe the first accepted payload: one scheme serves every worker of
    // a tensor, so raw payloads or a scheme without a symbol form send
    // the whole tensor down the exact path (before any stats are
    // recorded). The probe is cheap — the no-symbol default returns
    // `None` without decoding.
    let probe = payloads.iter().enumerate().find(|(_, p)| !p.is_empty());
    let symbolic = match probe {
        Some((w, worker_payloads)) => match &worker_payloads[i] {
            TensorPayload::Raw(_) => false,
            TensorPayload::Compressed(wire) => ctx_row[w]
                .as_ref()
                .expect("compressed payload implies a context")
                .decompress_symbols(wire, &mut scratch.syms)
                .expect("payload produced by matching context")
                .is_some(),
        },
        None => unreachable!("caller guarantees an accepted worker"),
    };
    if !symbolic {
        return aggregate_tensor_exact(
            imp,
            shape,
            ctx_row,
            payloads,
            i,
            accepted_count,
            scratch,
            stats,
            codec,
            timings,
        );
    }

    // Pass 1: decode every accepted worker's symbols and scale.
    scratch.scales.clear();
    let mut member = 0usize;
    for (w, worker_payloads) in payloads.iter().enumerate() {
        if worker_payloads.is_empty() {
            continue; // dropped straggler
        }
        let wire = match &worker_payloads[i] {
            TensorPayload::Compressed(wire) => wire,
            TensorPayload::Raw(_) => {
                unreachable!("payload kinds are uniform across workers for a tensor")
            }
        };
        if scratch.pool.len() <= member {
            scratch.pool.push(Vec::new());
        }
        let t0 = Instant::now();
        let scale = ctx_row[w]
            .as_ref()
            .expect("compressed payload implies a context")
            .decompress_symbols(wire, &mut scratch.pool[member])
            .expect("payload produced by matching context")
            .expect("symbol form is uniform across workers for a tensor");
        let dt = t0.elapsed().as_secs_f64();
        *codec += dt;
        timings.decode += dt;
        stats.record(n, wire.len());
        scratch.scales.push(scale);
        member += 1;
    }

    let a0 = Instant::now();
    // Scale grouping: distinct bit patterns in first-occurrence order.
    scratch.groups.clear();
    scratch.membership.clear();
    for &scale in &scratch.scales {
        let bits = scale.to_bits();
        let g = match scratch.groups.iter().position(|&b| b == bits) {
            Some(g) => g,
            None => {
                scratch.groups.push(bits);
                scratch.groups.len() - 1
            }
        };
        scratch.membership.push(g);
    }

    // Pass 2: per group, integer lane sums then one deferred multiply.
    let mut acc = vec![0f32; n];
    let words = n.div_ceil(4);
    for (g, &bits) in scratch.groups.iter().enumerate() {
        scratch.lanes.clear();
        scratch.lanes.resize(words, 0);
        let mut members = 0u32;
        for (m, syms) in scratch.pool[..scratch.membership.len()].iter().enumerate() {
            if scratch.membership[m] == g {
                kernels::symbol_lanes_add(imp, syms, &mut scratch.lanes);
                members += 1;
            }
        }
        let scale = f32::from_bits(bits);
        if g == 0 {
            kernels::symbol_lanes_drain_assign(imp, &scratch.lanes, members, scale, &mut acc);
        } else {
            kernels::symbol_lanes_drain_add(imp, &scratch.lanes, members, scale, &mut acc);
        }
    }
    let mut avg = Tensor::from_vec(acc, shape.clone());
    avg.scale_inplace(1.0 / accepted_count as f32);
    timings.accumulate += a0.elapsed().as_secs_f64();
    avg
}

/// A striped accumulator for the bookkeeping shards must share: traffic
/// statistics (order-insensitive `u64` sums) and measured codec seconds.
/// Stripes are deliberately fewer than shards so the lock-wait histogram
/// actually observes contention; the model tensors themselves are never
/// behind a lock — each shard owns a disjoint tensor range.
type StatsStripe = Mutex<(CompressionStats, f64)>;

fn stats_stripes(shards: usize) -> Vec<StatsStripe> {
    (0..shards.div_ceil(2).max(1))
        .map(|_| Mutex::new((CompressionStats::new(), 0.0)))
        .collect()
}

impl ServerCore {
    /// Builds the server state from the shared problem instance.
    pub fn new(problem: &Problem) -> Self {
        let config = problem.config;
        // Build per-worker context rows, then transpose to tensor-major.
        let mut by_worker: Vec<Vec<Option<Box<dyn Compressor>>>> =
            (0..config.workers).map(|w| problem.push_ctxs(w)).collect();
        let mut decode_ctxs: Vec<Vec<Option<Box<dyn Compressor>>>> = (0..problem.num_tensors())
            .map(|_| Vec::with_capacity(config.workers))
            .collect();
        for row in by_worker.drain(..) {
            for (i, ctx) in row.into_iter().enumerate() {
                decode_ctxs[i].push(ctx);
            }
        }
        // The same construction workers run locally at step 0
        // (`PolicySpec::initial_decisions`): both sides derive the initial
        // multipliers from the config alone, so no wire round-trip is
        // needed before the first push.
        let (policy, current_decisions) = if config.policy.is_adaptive() {
            let mut p = config
                .policy
                .build(problem.num_tensors(), base_sparsity(&config))
                .expect("policy spec is validated when the config is built");
            let first = p.decide(0, &[]);
            (Some(p), first)
        } else {
            (None, Vec::new())
        };
        let reg = threelc_obs::global();
        ServerCore {
            global: problem.init.clone(),
            prev_global: problem.init.snapshot(),
            decode_ctxs,
            pull_ctxs: problem.pull_ctxs(),
            optimizer: SgdMomentum::new(config.momentum, config.weight_decay),
            schedule: LrSchedule::cosine(config.lr_max, config.lr_min, config.total_steps),
            shapes: problem.shapes.clone(),
            push_stats: CompressionStats::new(),
            pull_stats: CompressionStats::new(),
            policy,
            current_decisions,
            step: 0,
            threads: 1,
            apply_seconds: reg.histogram("engine.apply_step_seconds"),
            shard_busy: reg.histogram("engine.shard.busy_seconds"),
            shard_lock_wait: reg.histogram("engine.shard.lock_wait_seconds"),
            aggregate_decode_seconds: reg.histogram("engine.aggregate.symbol_decode_seconds"),
            aggregate_accumulate_seconds: reg.histogram("engine.aggregate.accumulate_seconds"),
            config,
        }
    }

    /// The decisions governing the *next* step's encodes (empty when the
    /// policy is static). Right after construction these are the step-0
    /// decisions, which every worker must apply before its first push —
    /// [`crate::Cluster::new`] does it directly; the networked worker
    /// derives the same vector locally via
    /// `PolicySpec::initial_decisions`.
    pub fn current_decisions(&self) -> &[Decision] {
        &self.current_decisions
    }

    /// Requests up to `threads` aggregation shards for [`Self::apply_step`]
    /// (`0` = one per hardware core). The budget is also forwarded to every
    /// decode and pull compression context. A pure performance hint: the
    /// sharded step is bit-identical to the serial one (each shard owns a
    /// disjoint tensor range, and per-tensor arithmetic keeps worker-id
    /// order).
    pub fn set_threads(&mut self, threads: usize) {
        let threads = if threads == 0 {
            parallel::available_threads()
        } else {
            threads
        };
        self.threads = threads;
        for ctx in self.decode_ctxs.iter_mut().flatten().flatten() {
            ctx.set_threads(threads);
        }
        for ctx in self.pull_ctxs.iter_mut().flatten() {
            ctx.set_threads(threads);
        }
    }

    /// Shard count for a step over `n` tensors.
    fn plan_shards(&self, n: usize) -> usize {
        if self.threads <= 1 || n < 2 {
            1
        } else {
            self.threads.min(n)
        }
    }

    /// The server's full-precision global model.
    pub fn global(&self) -> &Network {
        &self.global
    }

    /// Steps applied so far.
    pub fn step_number(&self) -> u64 {
        self.step
    }

    /// The learning rate the *next* step will use: the cosine schedule with
    /// linear warmup (Goyal et al.) over the first `warmup_steps` steps.
    pub fn lr(&self) -> f32 {
        let config = &self.config;
        let warmup = if config.warmup_steps > 0 && self.step < config.warmup_steps {
            (self.step + 1) as f32 / config.warmup_steps as f32
        } else {
            1.0
        };
        self.schedule.lr_at(self.step) * warmup
    }

    /// Cumulative gradient-push traffic statistics.
    pub fn push_stats(&self) -> &CompressionStats {
        &self.push_stats
    }

    /// Cumulative model-delta-pull traffic statistics.
    pub fn pull_stats(&self) -> &CompressionStats {
        &self.pull_stats
    }

    /// Executes one server step: decodes and averages the accepted pushes
    /// (in worker-id order — float addition is not associative, so order
    /// is part of the contract), applies SGD-with-momentum to the global
    /// model, and compresses the resulting model delta for the pull path.
    ///
    /// `payloads` holds one entry per worker in worker-id order; an empty
    /// vector marks a dropped straggler whose push is not aggregated.
    ///
    /// `residual_l2` is the largest per-replica error-accumulation residual
    /// norm reported for this step (0.0 when unknown or stateless); it only
    /// feeds residual-targeting policies and must be bit-reproducible
    /// across runtimes (it is: workers compute it from their own contexts
    /// and report it with the push).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoAcceptedPushes`] when every worker's
    /// payload list is empty (or `accepted_count` is zero): an all-rejected
    /// step has nothing to aggregate. The model, optimizer, and step
    /// counter are untouched on error.
    ///
    /// # Panics
    ///
    /// Panics if payload counts disagree with the model, or if a payload
    /// fails to decode (payloads come from matching contexts; failures are
    /// programming errors here — the networked runtime validates frames
    /// before this point).
    pub fn apply_step(
        &mut self,
        payloads: &[Vec<TensorPayload>],
        accepted_count: usize,
        residual_l2: f64,
    ) -> Result<ServerStepOutput, EngineError> {
        if accepted_count == 0 || payloads.iter().all(|p| p.is_empty()) {
            return Err(EngineError::NoAcceptedPushes { step: self.step });
        }
        let step_start = Instant::now();
        let lr = self.lr();
        let n_params = self.shapes.len();
        let shards = self.plan_shards(n_params);
        let mut server_codec = 0.0f64;
        // Compressed mode's u16 lanes hold at most 32767 workers' digits;
        // bigger steps take the exact path (a deterministic choice — it
        // depends only on the accepted count, which replays identically).
        let mode = match self.config.aggregate {
            AggregateMode::Compressed if accepted_count > MAX_COMPRESSED_LANE_WORKERS => {
                AggregateMode::Exact
            }
            m => m,
        };

        // The decisions governing this step also apply to the pull side:
        // the server re-encodes model deltas at the same multiplier the
        // workers used for their pushes.
        if !self.current_decisions.is_empty() {
            for (ctx, d) in self.pull_ctxs.iter_mut().zip(&self.current_decisions) {
                if let Some(ctx) = ctx {
                    ctx.set_sparsity(d.s);
                }
            }
        }

        // Trace the three server phases by measured boundaries rather than
        // RAII guards: the sharded twins run on pool threads that carry no
        // trace scope, so the spans are recorded here on the calling
        // thread (a no-op unless a `TraceScope` is active).
        let tracing = trace::scope_active();
        let t_decode = if tracing { trace::now_ns() } else { 0 };
        let aggregated = if shards > 1 {
            self.decode_aggregate_sharded(payloads, accepted_count, mode, shards, &mut server_codec)
        } else {
            self.decode_aggregate_serial(payloads, accepted_count, mode, &mut server_codec)
        };
        let t_aggregate = if tracing {
            let t = trace::now_ns();
            trace::record_span("server-decode", t_decode, t);
            t
        } else {
            0
        };
        self.optimizer.apply(&mut self.global, &aggregated, lr);

        // Compress model deltas (shared pull contexts, Fig. 2b).
        let global_now = self.global.snapshot();
        let t_reencode = if tracing {
            let t = trace::now_ns();
            trace::record_span("aggregate", t_aggregate, t);
            t
        } else {
            0
        };
        let (pulls, step_deltas) = if shards > 1 {
            self.compress_pulls_sharded(&global_now, shards, &mut server_codec)
        } else {
            self.compress_pulls_serial(&global_now, &mut server_codec)
        };
        if tracing {
            trace::record_span("re-encode", t_reencode, trace::now_ns());
        }
        self.prev_global = global_now;
        let step = self.step;
        self.step += 1;

        // Resolve this step's decisions against what the step actually
        // measured, then ask the policy for the next step's decisions.
        // Every input is exactly reproducible (integer byte counts, the
        // workers' own residual norms) — wall-clock timings are
        // deliberately excluded so the sequence replays bit-identically.
        let (policy_records, next_decisions) = match self.policy.as_mut() {
            Some(policy) => {
                let mut obs = Vec::with_capacity(n_params);
                for i in 0..n_params {
                    let mut wire_bytes = 0usize;
                    let mut n_payloads = 0usize;
                    for worker_payloads in payloads.iter().filter(|p| !p.is_empty()) {
                        wire_bytes += worker_payloads[i].wire_len() as usize;
                        n_payloads += 1;
                    }
                    obs.push(TensorObs {
                        values: self.shapes[i].num_elements(),
                        wire_bytes,
                        payloads: n_payloads,
                        residual_l2,
                    });
                }
                let records: Vec<PolicyRecord> = self
                    .current_decisions
                    .iter()
                    .zip(&obs)
                    .enumerate()
                    .map(|(i, (d, o))| {
                        let r = PolicyRecord {
                            step,
                            tensor: i as u16,
                            s: d.s.value(),
                            reason: d.reason,
                            achieved_ratio: o.achieved_ratio(),
                        };
                        threelc_obs::event!(
                            threelc_obs::Level::Debug,
                            "policy.decision",
                            step = r.step,
                            tensor = r.tensor,
                            s = r.s,
                            reason = r.reason.as_str(),
                            achieved_ratio = r.achieved_ratio
                        );
                        r
                    })
                    .collect();
                let next = policy.decide(step + 1, &obs);
                self.current_decisions = next.clone();
                (records, next)
            }
            None => (Vec::new(), Vec::new()),
        };
        self.apply_seconds
            .record(step_start.elapsed().as_secs_f64());

        Ok(ServerStepOutput {
            lr,
            pulls,
            step_deltas,
            server_codec_seconds: server_codec,
            policy_records,
            next_decisions,
        })
    }

    /// Whether an adaptive policy is active (decisions must then be
    /// forwarded to workers after every step).
    pub fn policy_active(&self) -> bool {
        self.policy.is_some()
    }

    /// Decode + aggregate in worker-id order, one tensor at a time, under
    /// the step's resolved [`AggregateMode`].
    fn decode_aggregate_serial(
        &mut self,
        payloads: &[Vec<TensorPayload>],
        accepted_count: usize,
        mode: AggregateMode,
        server_codec: &mut f64,
    ) -> Vec<Tensor> {
        let imp = kernels::active();
        let n_params = self.shapes.len();
        let mut scratch = AggScratch::default();
        let mut timings = AggTimings::default();
        let mut aggregated: Vec<Tensor> = Vec::with_capacity(n_params);
        for i in 0..n_params {
            aggregated.push(aggregate_tensor(
                mode,
                imp,
                &self.shapes[i],
                &self.decode_ctxs[i],
                payloads,
                i,
                accepted_count,
                &mut scratch,
                &mut self.push_stats,
                server_codec,
                &mut timings,
            ));
        }
        self.aggregate_decode_seconds.record(timings.decode);
        self.aggregate_accumulate_seconds.record(timings.accumulate);
        aggregated
    }

    /// The sharded twin of [`Self::decode_aggregate_serial`]: tensors are
    /// split into `shards` contiguous index ranges, each shard decoding and
    /// averaging its range on its own thread. Bit-identical to the serial
    /// path because tensors are independent and the worker-id summation
    /// order within each tensor is unchanged; only the (order-insensitive)
    /// `u64` traffic counters and measured codec seconds flow through the
    /// striped locks.
    fn decode_aggregate_sharded(
        &mut self,
        payloads: &[Vec<TensorPayload>],
        accepted_count: usize,
        mode: AggregateMode,
        shards: usize,
        server_codec: &mut f64,
    ) -> Vec<Tensor> {
        let imp = kernels::active();
        let ranges = split_ranges(self.shapes.len(), shards);
        let ctx_chunks = split_off_ranges(self.decode_ctxs.as_mut_slice(), &ranges);
        let stripes = stats_stripes(shards);
        let shapes = &self.shapes;
        let shard_busy = &self.shard_busy;
        let shard_lock_wait = &self.shard_lock_wait;
        let aggregate_decode_seconds = &self.aggregate_decode_seconds;
        let aggregate_accumulate_seconds = &self.aggregate_accumulate_seconds;
        let tasks: Vec<_> = ranges.iter().cloned().zip(ctx_chunks).collect();
        let results = parallel::run_tasks(tasks, |k, (range, ctx_rows)| {
            let t0 = Instant::now();
            let mut local_stats = CompressionStats::new();
            let mut local_codec = 0.0f64;
            let mut scratch = AggScratch::default();
            let mut timings = AggTimings::default();
            let mut out = Vec::with_capacity(range.len());
            for (ctx_row, i) in ctx_rows.iter().zip(range) {
                out.push(aggregate_tensor(
                    mode,
                    imp,
                    &shapes[i],
                    ctx_row,
                    payloads,
                    i,
                    accepted_count,
                    &mut scratch,
                    &mut local_stats,
                    &mut local_codec,
                    &mut timings,
                ));
            }
            aggregate_decode_seconds.record(timings.decode);
            aggregate_accumulate_seconds.record(timings.accumulate);
            let w0 = Instant::now();
            let mut stripe = stripes[k % stripes.len()].lock().expect("stripe poisoned");
            shard_lock_wait.record(w0.elapsed().as_secs_f64());
            stripe.0.merge(&local_stats);
            stripe.1 += local_codec;
            drop(stripe);
            shard_busy.record(t0.elapsed().as_secs_f64());
            out
        });
        for stripe in &stripes {
            let stripe = stripe.lock().expect("stripe poisoned");
            self.push_stats.merge(&stripe.0);
            *server_codec += stripe.1;
        }
        results.into_iter().flatten().collect()
    }

    /// Compress this step's model deltas through the shared pull contexts.
    fn compress_pulls_serial(
        &mut self,
        global_now: &[Tensor],
        server_codec: &mut f64,
    ) -> (Vec<TensorPayload>, Vec<Tensor>) {
        let workers = self.config.workers;
        let n_params = self.shapes.len();
        let mut pulls = Vec::with_capacity(n_params);
        let mut step_deltas = Vec::with_capacity(n_params);
        for (i, now) in global_now.iter().enumerate() {
            let delta = now
                .sub(&self.prev_global[i])
                .expect("snapshots share shapes");
            match &mut self.pull_ctxs[i] {
                Some(ctx) => {
                    let t0 = Instant::now();
                    let wire = ctx.compress(&delta).expect("delta shape matches context");
                    let decoded = ctx
                        .decompress(&wire)
                        .expect("payload produced by this context");
                    let elapsed = t0.elapsed().as_secs_f64();
                    *server_codec += elapsed;
                    if !self.config.shared_pull_compression {
                        // Ablation: without sharing, the server pays the
                        // codec cost once per worker.
                        *server_codec += elapsed * (workers as f64 - 1.0);
                    }
                    self.pull_stats
                        .record(delta.len() * workers, wire.len() * workers);
                    pulls.push(TensorPayload::Compressed(wire));
                    step_deltas.push(decoded);
                }
                None => {
                    pulls.push(TensorPayload::Raw(delta.clone()));
                    step_deltas.push(delta);
                }
            }
        }
        (pulls, step_deltas)
    }

    /// The sharded twin of [`Self::compress_pulls_serial`]. Pull contexts
    /// are per tensor, so each shard owns the contexts of its tensor range
    /// exclusively; compression state never crosses a shard boundary and
    /// the payloads are bit-identical to the serial path.
    fn compress_pulls_sharded(
        &mut self,
        global_now: &[Tensor],
        shards: usize,
        server_codec: &mut f64,
    ) -> (Vec<TensorPayload>, Vec<Tensor>) {
        let workers = self.config.workers;
        let shared_pull = self.config.shared_pull_compression;
        let ranges = split_ranges(self.shapes.len(), shards);
        let ctx_chunks = split_off_ranges(self.pull_ctxs.as_mut_slice(), &ranges);
        let stripes = stats_stripes(shards);
        let prev_global = &self.prev_global;
        let shard_busy = &self.shard_busy;
        let shard_lock_wait = &self.shard_lock_wait;
        let tasks: Vec<_> = ranges.iter().cloned().zip(ctx_chunks).collect();
        let results = parallel::run_tasks(tasks, |k, (range, ctxs)| {
            let t0 = Instant::now();
            let mut local_stats = CompressionStats::new();
            let mut local_codec = 0.0f64;
            let mut pulls = Vec::with_capacity(range.len());
            let mut deltas = Vec::with_capacity(range.len());
            for (ctx, i) in ctxs.iter_mut().zip(range) {
                let delta = global_now[i]
                    .sub(&prev_global[i])
                    .expect("snapshots share shapes");
                match ctx {
                    Some(ctx) => {
                        let c0 = Instant::now();
                        let wire = ctx.compress(&delta).expect("delta shape matches context");
                        let decoded = ctx
                            .decompress(&wire)
                            .expect("payload produced by this context");
                        let elapsed = c0.elapsed().as_secs_f64();
                        local_codec += elapsed;
                        if !shared_pull {
                            local_codec += elapsed * (workers as f64 - 1.0);
                        }
                        local_stats.record(delta.len() * workers, wire.len() * workers);
                        pulls.push(TensorPayload::Compressed(wire));
                        deltas.push(decoded);
                    }
                    None => {
                        pulls.push(TensorPayload::Raw(delta.clone()));
                        deltas.push(delta);
                    }
                }
            }
            let w0 = Instant::now();
            let mut stripe = stripes[k % stripes.len()].lock().expect("stripe poisoned");
            shard_lock_wait.record(w0.elapsed().as_secs_f64());
            stripe.0.merge(&local_stats);
            stripe.1 += local_codec;
            drop(stripe);
            shard_busy.record(t0.elapsed().as_secs_f64());
            (pulls, deltas)
        });
        for stripe in &stripes {
            let stripe = stripe.lock().expect("stripe poisoned");
            self.pull_stats.merge(&stripe.0);
            *server_codec += stripe.1;
        }
        let mut pulls = Vec::with_capacity(self.shapes.len());
        let mut step_deltas = Vec::with_capacity(self.shapes.len());
        for (p, d) in results {
            pulls.extend(p);
            step_deltas.extend(d);
        }
        (pulls, step_deltas)
    }
}

/// Samples this step's per-worker compute multipliers and decides which
/// workers participate: with `backup_workers = k`, the `k` slowest are
/// dropped (their pushes never aggregated), as in TensorFlow's
/// `SyncReplicasOptimizer` backup-worker design (§2.1). Returns the
/// participation mask and the accepted slowest multiplier.
pub fn sample_stragglers(config: &ExperimentConfig, rng: &mut Rng) -> (Vec<bool>, f64) {
    let n = config.workers;
    let jitter = config.timing.straggler_jitter;
    let multipliers: Vec<f64> = (0..n)
        .map(|_| {
            if jitter > 0.0 {
                (jitter * threelc_tensor::init::sample_standard_normal(rng) as f64).exp()
            } else {
                1.0
            }
        })
        .collect();
    let backups = config.backup_workers.min(n.saturating_sub(1));
    let mut accepted = vec![true; n];
    if backups > 0 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            multipliers[b]
                .partial_cmp(&multipliers[a])
                .expect("multipliers are finite")
        });
        for &w in order.iter().take(backups) {
            accepted[w] = false;
        }
    }
    let gate = multipliers
        .iter()
        .zip(&accepted)
        .filter(|(_, &a)| a)
        .map(|(&m, _)| m)
        .fold(0.0f64, f64::max);
    (accepted, gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_baselines::SchemeKind;

    fn tiny(scheme: SchemeKind) -> ExperimentConfig {
        ExperimentConfig {
            scheme,
            workers: 2,
            batch_per_worker: 8,
            total_steps: 6,
            model_width: 16,
            model_blocks: 1,
            seed: 11,
            ..Default::default()
        }
    }

    /// Drives one BSP step directly through the engine types, the way the
    /// networked runtime does.
    fn engine_step(
        problem: &Problem,
        workers: &mut [WorkerReplica],
        server: &mut ServerCore,
    ) -> ServerStepOutput {
        let mut payloads = Vec::with_capacity(workers.len());
        let mut residual = 0.0f64;
        for w in workers.iter_mut() {
            let (_loss, grads) = w.compute(&problem.data, problem.config.batch_per_worker);
            payloads.push(w.encode_push(grads).payloads);
            residual = residual.max(w.residual_l2());
        }
        let out = server
            .apply_step(&payloads, workers.len(), residual)
            .expect("every worker accepted in engine tests");
        for w in workers.iter_mut() {
            w.apply_deltas(&out.step_deltas);
            w.apply_policy(&out.next_decisions);
        }
        out
    }

    #[test]
    fn engine_matches_cluster_bit_for_bit() {
        for scheme in [SchemeKind::Float32, SchemeKind::three_lc(1.5)] {
            let config = tiny(scheme);
            let mut cluster = crate::Cluster::new(config);
            let problem = Problem::build(&config);
            let mut workers: Vec<WorkerReplica> = (0..config.workers)
                .map(|w| WorkerReplica::new(&problem, w))
                .collect();
            let mut server = ServerCore::new(&problem);
            for _ in 0..4 {
                cluster.step();
                engine_step(&problem, &mut workers, &mut server);
            }
            assert_eq!(
                server.global().snapshot(),
                cluster.global_model().snapshot(),
                "global model diverged under {scheme}"
            );
            for (w, replica) in workers.iter().enumerate() {
                assert_eq!(
                    replica.model().snapshot(),
                    cluster.worker_model(w).snapshot(),
                    "worker {w} replica diverged under {scheme}"
                );
            }
        }
    }

    #[test]
    fn sharded_server_matches_serial_bit_for_bit() {
        for scheme in [SchemeKind::three_lc(1.5), SchemeKind::Float32] {
            let config = tiny(scheme);
            let problem = Problem::build(&config);
            let mut serial_workers: Vec<WorkerReplica> = (0..config.workers)
                .map(|w| WorkerReplica::new(&problem, w))
                .collect();
            let mut serial = ServerCore::new(&problem);
            let mut sharded_workers: Vec<WorkerReplica> = (0..config.workers)
                .map(|w| {
                    let mut r = WorkerReplica::new(&problem, w);
                    r.set_threads(2);
                    r
                })
                .collect();
            let mut sharded = ServerCore::new(&problem);
            sharded.set_threads(4);
            for step in 0..4 {
                let a = engine_step(&problem, &mut serial_workers, &mut serial);
                let b = engine_step(&problem, &mut sharded_workers, &mut sharded);
                assert_eq!(a.pulls.len(), b.pulls.len());
                for (i, (x, y)) in a.pulls.iter().zip(&b.pulls).enumerate() {
                    match (x, y) {
                        (TensorPayload::Compressed(wa), TensorPayload::Compressed(wb)) => {
                            assert_eq!(wa, wb, "pull wire diverged: step={step} tensor={i}");
                        }
                        (TensorPayload::Raw(ta), TensorPayload::Raw(tb)) => {
                            assert_eq!(ta, tb, "raw pull diverged: step={step} tensor={i}");
                        }
                        _ => panic!("payload kind diverged: step={step} tensor={i}"),
                    }
                }
                assert_eq!(a.step_deltas, b.step_deltas, "deltas diverged: step={step}");
            }
            assert_eq!(
                serial.global().snapshot(),
                sharded.global().snapshot(),
                "global model diverged under {scheme}"
            );
            assert_eq!(serial.push_stats(), sharded.push_stats());
            assert_eq!(serial.pull_stats(), sharded.pull_stats());
        }
    }

    #[test]
    fn all_rejected_step_is_a_typed_error_not_a_panic() {
        // Both the serial and the sharded aggregation paths must refuse an
        // all-rejected step with `NoAcceptedPushes` and leave the server
        // untouched, so the very next valid step behaves like step 0.
        for threads in [1usize, 4] {
            let config = tiny(SchemeKind::three_lc(1.5));
            let problem = Problem::build(&config);
            let mut server = ServerCore::new(&problem);
            server.set_threads(threads);
            let before = server.global().snapshot();

            let empty: Vec<Vec<TensorPayload>> = (0..config.workers).map(|_| Vec::new()).collect();
            assert_eq!(
                server.apply_step(&empty, config.workers, 0.0).err(),
                Some(EngineError::NoAcceptedPushes { step: 0 }),
                "threads={threads}: every-payload-empty step must error"
            );
            assert_eq!(
                server.apply_step(&empty, 0, 0.0).err(),
                Some(EngineError::NoAcceptedPushes { step: 0 }),
                "threads={threads}: accepted_count=0 must error"
            );
            assert_eq!(
                server.global().snapshot(),
                before,
                "threads={threads}: a rejected step must not touch the model"
            );

            // The failed attempts consumed no step: a fresh server fed the
            // same pushes produces bit-identical output.
            let mut workers: Vec<WorkerReplica> = (0..config.workers)
                .map(|w| WorkerReplica::new(&problem, w))
                .collect();
            let mut fresh_workers: Vec<WorkerReplica> = (0..config.workers)
                .map(|w| WorkerReplica::new(&problem, w))
                .collect();
            let mut fresh = ServerCore::new(&problem);
            fresh.set_threads(threads);
            engine_step(&problem, &mut workers, &mut server);
            engine_step(&problem, &mut fresh_workers, &mut fresh);
            assert_eq!(
                server.global().snapshot(),
                fresh.global().snapshot(),
                "threads={threads}: errored attempts must not advance the step"
            );
        }
    }

    /// Runs `steps` BSP steps under one aggregation mode and returns
    /// everything that must be bit-reproducible: per-step pull wires,
    /// deltas, the final global model, and push statistics.
    fn run_mode(
        config: &ExperimentConfig,
        threads: usize,
        steps: usize,
    ) -> (Vec<ServerStepOutput>, Vec<Tensor>, CompressionStats) {
        let problem = Problem::build(config);
        let mut workers: Vec<WorkerReplica> = (0..config.workers)
            .map(|w| WorkerReplica::new(&problem, w))
            .collect();
        let mut server = ServerCore::new(&problem);
        server.set_threads(threads);
        let outs: Vec<ServerStepOutput> = (0..steps)
            .map(|_| engine_step(&problem, &mut workers, &mut server))
            .collect();
        let global = server.global().snapshot();
        let stats = server.push_stats().clone();
        (outs, global, stats)
    }

    fn assert_runs_identical(a: &[ServerStepOutput], b: &[ServerStepOutput], label: &str) {
        for (step, (oa, ob)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                oa.step_deltas, ob.step_deltas,
                "{label}: deltas step={step}"
            );
            assert_eq!(oa.pulls.len(), ob.pulls.len(), "{label}: pulls step={step}");
            for (i, (x, y)) in oa.pulls.iter().zip(&ob.pulls).enumerate() {
                match (x, y) {
                    (TensorPayload::Compressed(wa), TensorPayload::Compressed(wb)) => {
                        assert_eq!(wa, wb, "{label}: pull wire step={step} tensor={i}")
                    }
                    (TensorPayload::Raw(ta), TensorPayload::Raw(tb)) => {
                        assert_eq!(ta, tb, "{label}: raw pull step={step} tensor={i}")
                    }
                    _ => panic!("{label}: payload kind diverged step={step} tensor={i}"),
                }
            }
        }
    }

    #[test]
    fn exact_mode_is_bit_identical_to_f32_mode() {
        // The tentpole's core claim: symbol-domain worker-order
        // accumulation reproduces the dense f32 path bit for bit — same
        // pull wires, same deltas, same model, same traffic stats — at
        // every thread count, for 3LC and for schemes with no symbol form.
        for scheme in [SchemeKind::three_lc(1.5), SchemeKind::Float32] {
            for threads in [1usize, 4] {
                let mut f32_cfg = tiny(scheme);
                f32_cfg.aggregate = AggregateMode::F32;
                let mut exact_cfg = tiny(scheme);
                exact_cfg.aggregate = AggregateMode::Exact;
                let (a, ga, sa) = run_mode(&f32_cfg, threads, 4);
                let (b, gb, sb) = run_mode(&exact_cfg, threads, 4);
                let label = format!("{scheme} threads={threads}");
                assert_runs_identical(&a, &b, &label);
                assert_eq!(ga, gb, "{label}: global model diverged");
                assert_eq!(sa, sb, "{label}: push stats diverged");
            }
        }
    }

    #[test]
    fn compressed_mode_is_deterministic_across_thread_counts() {
        // Compressed-lane aggregation reorders float math (per scale
        // group), so it is not bit-identical to exact mode — but it must be
        // bit-identical to *itself* regardless of sharding.
        let mut config = tiny(SchemeKind::three_lc(1.5));
        config.workers = 4;
        config.aggregate = AggregateMode::Compressed;
        let (a, ga, sa) = run_mode(&config, 1, 4);
        let (b, gb, sb) = run_mode(&config, 4, 4);
        assert_runs_identical(&a, &b, "compressed serial-vs-sharded");
        assert_eq!(ga, gb, "compressed: global model diverged across shards");
        assert_eq!(sa, sb, "compressed: push stats diverged across shards");
        // And it must still converge on the same training signal: traffic
        // stats match exact mode (same payloads flow either way).
        let mut exact_cfg = config;
        exact_cfg.aggregate = AggregateMode::Exact;
        let (_, _, se) = run_mode(&exact_cfg, 1, 4);
        assert_eq!(sa, se, "compressed: traffic stats diverged from exact");
    }

    #[test]
    fn compressed_mode_with_uniform_scales_matches_exact() {
        // Single accepted worker ⇒ one scale group whose drain computes
        // the same `sym × scale` products in the same order as exact mode,
        // so the two modes coincide bitwise.
        let mut compressed_cfg = tiny(SchemeKind::three_lc(1.0));
        compressed_cfg.workers = 1;
        compressed_cfg.aggregate = AggregateMode::Compressed;
        let mut exact_cfg = compressed_cfg;
        exact_cfg.aggregate = AggregateMode::Exact;
        let (a, ga, _) = run_mode(&compressed_cfg, 1, 4);
        let (b, gb, _) = run_mode(&exact_cfg, 1, 4);
        assert_runs_identical(&a, &b, "single-worker compressed-vs-exact");
        assert_eq!(ga, gb, "single-worker: global model diverged");
    }

    #[test]
    fn set_threads_zero_resolves_to_hardware_cores() {
        let config = tiny(SchemeKind::Float32);
        let problem = Problem::build(&config);
        let mut server = ServerCore::new(&problem);
        server.set_threads(0);
        assert!(server.threads >= 1);
    }

    #[test]
    fn decode_contexts_mirror_compress_contexts() {
        // A fresh decode-side context must reproduce exactly what the
        // (stateful) compress-side context decodes, even after several
        // steps of error accumulation.
        let config = tiny(SchemeKind::three_lc(1.0));
        let problem = Problem::build(&config);
        let mut worker = WorkerReplica::new(&problem, 0);
        let mirror = problem.push_ctxs(0);
        for _ in 0..3 {
            let (_, grads) = worker.compute(&problem.data, 8);
            for (i, payload) in worker.encode_push(grads).payloads.iter().enumerate() {
                if let TensorPayload::Compressed(wire) = payload {
                    let a = worker.push_ctxs[i]
                        .as_ref()
                        .expect("compressed implies context")
                        .decompress(wire)
                        .expect("valid payload");
                    let b = mirror[i]
                        .as_ref()
                        .expect("same compression plan")
                        .decompress(wire)
                        .expect("valid payload");
                    assert_eq!(a, b, "decode depends on context state");
                }
            }
        }
    }

    #[test]
    fn problem_exposes_compression_plan() {
        let config = tiny(SchemeKind::three_lc(1.0));
        let problem = Problem::build(&config);
        assert_eq!(problem.num_tensors(), problem.compressible.len());
        assert!(problem.compressible_values() > 0);
        // Biases fall below the default threshold.
        assert!(problem.compressible.iter().any(|&c| !c));
        let ctxs = problem.pull_ctxs();
        for (ctx, &c) in ctxs.iter().zip(&problem.compressible) {
            assert_eq!(ctx.is_some(), c);
        }
    }

    #[test]
    fn wire_len_counts_raw_as_four_bytes_per_value() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(TensorPayload::Raw(t).wire_len(), 12);
        assert_eq!(TensorPayload::Compressed(vec![0; 5]).wire_len(), 5);
    }

    #[test]
    fn stragglers_without_jitter_all_participate() {
        let config = tiny(SchemeKind::Float32);
        let mut rng = threelc_tensor::rng(1);
        let (accepted, gate) = sample_stragglers(&config, &mut rng);
        assert!(accepted.iter().all(|&a| a));
        assert_eq!(gate, 1.0);
    }
}
