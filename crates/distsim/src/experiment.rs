//! End-to-end experiment execution.

use crate::cluster::Cluster;
use crate::config::{ExperimentConfig, TimingModel};
use crate::netmodel::NetworkModel;
use crate::trace::{EvalRecord, TrainingTrace};
use serde::{Deserialize, Serialize};
use threelc_learning::Evaluation;

/// The complete outcome of one training run: configuration, final test
/// accuracy, and the per-step trace from which training time under any
/// bandwidth is derived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Human-readable scheme label (as used in the paper's tables).
    pub scheme_label: String,
    /// Model parameter count (for traffic scaling).
    pub model_params: u64,
    /// Final evaluation of the global model on the test set.
    pub final_eval: Evaluation,
    /// Per-step traffic/time records and periodic evaluations.
    pub trace: TrainingTrace,
}

impl ExperimentResult {
    /// Total simulated training seconds under a given link.
    pub fn total_seconds_at(&self, net: &NetworkModel) -> f64 {
        let scale = self.config.timing.scale_for(self.model_params);
        self.trace.total_seconds_at(net, &self.config.timing, scale)
    }

    /// Average compressed bits per state-change value over the run.
    pub fn bits_per_value(&self) -> f64 {
        self.trace
            .average_bits_per_value(self.config.workers as u64)
    }

    /// End-to-end compression ratio versus 32-bit floats.
    pub fn compression_ratio(&self) -> f64 {
        self.trace.compression_ratio(self.config.workers as u64)
    }

    /// The timing model in effect.
    pub fn timing(&self) -> &TimingModel {
        &self.config.timing
    }
}

/// Runs one full training experiment.
///
/// Evaluates the global model every `config.eval_every` steps (if nonzero)
/// and always once more after the final step.
///
/// ```no_run
/// use threelc_baselines::SchemeKind;
/// use threelc_distsim::{run_experiment, ExperimentConfig, NetworkModel};
///
/// let result = run_experiment(&ExperimentConfig::for_scheme(SchemeKind::three_lc(1.0)));
/// println!(
///     "accuracy {:.2}% in {:.0} simulated minutes @ 10 Mbps",
///     result.final_eval.accuracy * 100.0,
///     result.total_seconds_at(&NetworkModel::ten_mbps()) / 60.0,
/// );
/// ```
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    let mut cluster = Cluster::new(*config);
    let mut trace = TrainingTrace::default();
    for step in 0..config.total_steps {
        trace.record_step(cluster.step());
        let due = config.eval_every > 0 && (step + 1) % config.eval_every == 0;
        if due && step + 1 < config.total_steps {
            trace.evals.push(EvalRecord {
                step: step + 1,
                eval: cluster.evaluate(),
            });
        }
    }
    let final_eval = cluster.evaluate();
    trace.evals.push(EvalRecord {
        step: config.total_steps,
        eval: final_eval,
    });
    trace.policy = cluster.policy_trace().clone();
    trace.run_watchdog(config.workers as u64);
    ExperimentResult {
        config: *config,
        scheme_label: config.scheme.label(),
        model_params: cluster.num_params(),
        final_eval,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threelc_baselines::SchemeKind;

    fn quick(scheme: SchemeKind) -> ExperimentConfig {
        ExperimentConfig {
            scheme,
            workers: 2,
            batch_per_worker: 8,
            total_steps: 6,
            model_width: 16,
            model_blocks: 1,
            eval_every: 2,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn run_produces_complete_trace() {
        let r = run_experiment(&quick(SchemeKind::three_lc(1.0)));
        assert_eq!(r.trace.steps.len(), 6);
        // Evals at steps 2, 4, and the final 6.
        let steps: Vec<u64> = r.trace.evals.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![2, 4, 6]);
        assert_eq!(r.trace.final_eval().unwrap().eval, r.final_eval);
        assert!(r.model_params > 0);
        assert_eq!(r.scheme_label, "3LC (s=1.00)");
    }

    #[test]
    fn time_decreases_with_bandwidth() {
        let r = run_experiment(&quick(SchemeKind::Float32));
        let slow = r.total_seconds_at(&NetworkModel::ten_mbps());
        let fast = r.total_seconds_at(&NetworkModel::one_gbps());
        assert!(slow > fast, "10 Mbps {slow} should exceed 1 Gbps {fast}");
    }

    #[test]
    fn three_lc_beats_baseline_on_slow_links() {
        let base = run_experiment(&quick(SchemeKind::Float32));
        let lc = run_experiment(&quick(SchemeKind::three_lc(1.0)));
        let net = NetworkModel::ten_mbps();
        assert!(
            lc.total_seconds_at(&net) < base.total_seconds_at(&net),
            "3LC must be faster at 10 Mbps"
        );
        assert!(lc.compression_ratio() > 10.0);
        assert!(lc.bits_per_value() < 3.2);
    }

    #[test]
    fn serde_roundtrip() {
        let r = run_experiment(&quick(SchemeKind::Int8));
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn adaptive_run_records_policy_decisions_in_the_trace() {
        let mut config = quick(SchemeKind::three_lc(1.0));
        config.policy =
            threelc_policy::PolicySpec::parse("schedule:from=1.0,to=1.8,over=3").unwrap();
        let r = run_experiment(&config);
        assert_eq!(
            r.trace.policy.label,
            "schedule:from=1,to=1.8,over=3,layer=0"
        );
        assert!(!r.trace.policy.records.is_empty());
        assert!(!r.trace.policy.is_constant());
        // And the section survives serialization.
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace.policy, r.trace.policy);
    }
}
