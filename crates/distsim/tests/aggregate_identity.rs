//! Property tests for the tentpole claim: **exact-mode symbol-domain
//! aggregation is bit-identical to the seed f32 path** — same pull wires,
//! same per-step deltas, same global model bit patterns — across thread
//! counts and adversarial inputs (all-zero tensors, denormal scales,
//! single-worker steps, and payloads rejected mid-step).
//!
//! Codec-tier coverage (scalar / SWAR / SIMD) comes from re-running this
//! suite under `THREELC_CODEC_IMPL` in ci.sh's codec matrix: the engine
//! aggregates with the process-wide active tier, so one env var pins it.
//!
//! Bit patterns are compared directly (`f32::to_bits`), which is strictly
//! stronger than the CRC32 comparison the networked loopback tests use.

use proptest::prelude::*;
use threelc_baselines::SchemeKind;
use threelc_distsim::engine::ServerStepOutput;
use threelc_distsim::{
    AggregateMode, ExperimentConfig, Problem, ServerCore, TensorPayload, WorkerReplica,
};
use threelc_tensor::Tensor;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config(workers: usize, aggregate: AggregateMode) -> ExperimentConfig {
    ExperimentConfig {
        scheme: SchemeKind::three_lc(1.5),
        workers,
        batch_per_worker: 8,
        total_steps: 8,
        model_width: 16,
        model_blocks: 1,
        seed: 11,
        aggregate,
        ..Default::default()
    }
}

/// Bit patterns of a model snapshot (or any tensor list).
fn bits(ts: &[Tensor]) -> Vec<Vec<u32>> {
    ts.iter()
        .map(|t| t.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn assert_outputs_identical(
    a: &ServerStepOutput,
    b: &ServerStepOutput,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(
        bits(&a.step_deltas) == bits(&b.step_deltas),
        "{label}: step deltas diverged"
    );
    prop_assert!(a.pulls.len() == b.pulls.len(), "{label}: pull count");
    for (i, (x, y)) in a.pulls.iter().zip(&b.pulls).enumerate() {
        match (x, y) {
            (TensorPayload::Compressed(wa), TensorPayload::Compressed(wb)) => {
                prop_assert!(wa == wb, "{label}: pull wire diverged, tensor {i}");
            }
            (TensorPayload::Raw(ta), TensorPayload::Raw(tb)) => {
                prop_assert!(
                    bits(std::slice::from_ref(ta)) == bits(std::slice::from_ref(tb)),
                    "{label}: raw pull diverged, tensor {i}"
                );
            }
            _ => prop_assert!(false, "{label}: payload kind diverged, tensor {i}"),
        }
    }
    Ok(())
}

/// Deterministic adversarial fill for one tensor. `kind` selects the
/// pathology; `seed` varies the pattern between workers and steps.
fn fill(kind: u8, seed: u64, n: usize) -> Vec<f32> {
    match kind % 4 {
        // All-zero gradient: 3LC's scale collapses to 0.0.
        0 => vec![0.0; n],
        // Subnormal magnitudes: the wire scale itself goes denormal.
        1 => (0..n)
            .map(|i| {
                if (i as u64 + seed).is_multiple_of(3) {
                    1.0e-41
                } else {
                    -1.0e-41
                }
            })
            .collect(),
        // Pseudo-random small values (the common case).
        2 => (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33;
                ((x % 2001) as f32 - 1000.0) / 500.0
            })
            .collect(),
        // Sparse with exact zeros mixed among quantized-looking values.
        _ => (0..n)
            .map(|i| {
                if (i as u64 + seed).is_multiple_of(7) {
                    0.0
                } else {
                    ((i % 13) as f32 - 6.0) * 0.25
                }
            })
            .collect(),
    }
}

/// Compresses one crafted gradient set through worker `w`'s contexts,
/// keeping `ctxs` stateful across steps (error accumulation feeds back).
fn crafted_push(
    problem: &Problem,
    ctxs: &mut [Option<Box<dyn threelc::Compressor>>],
    kind: u8,
    seed: u64,
) -> Vec<TensorPayload> {
    problem
        .shapes
        .iter()
        .enumerate()
        .map(|(i, shape)| {
            let t = Tensor::from_vec(
                fill(kind, seed ^ (i as u64) << 8, shape.num_elements()),
                shape.clone(),
            );
            match ctxs[i].as_mut() {
                Some(ctx) => TensorPayload::Compressed(
                    ctx.compress(&t)
                        .expect("finite adversarial values compress"),
                ),
                None => TensorPayload::Raw(t),
            }
        })
        .collect()
}

proptest! {
    /// Feeds both aggregation modes the *same* crafted payload bytes —
    /// adversarial value patterns, per-step rejection masks (a payload
    /// dropped mid-step, exactly what the networked server does on a CRC
    /// failure), single-worker steps — and demands bitwise-equal output.
    #[test]
    fn exact_matches_f32_on_adversarial_pushes(
        workers in 1usize..5,
        threads_idx in 0usize..4,
        kinds in prop::collection::vec(0u8..4, 4..5),
        masks in prop::collection::vec(0u32..16, 2..3),
        seed in any::<u64>(),
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let problem_a = Problem::build(&config(workers, AggregateMode::F32));
        let problem_b = Problem::build(&config(workers, AggregateMode::Exact));
        let mut server_a = ServerCore::new(&problem_a);
        let mut server_b = ServerCore::new(&problem_b);
        server_a.set_threads(threads);
        server_b.set_threads(threads);
        // One stateful context set, shared by both servers: the payload
        // bytes under test are identical by construction.
        let mut ctxs: Vec<_> = (0..workers).map(|w| problem_a.push_ctxs(w)).collect();

        for (step, &mask) in masks.iter().enumerate() {
            let rejected = |w: usize| w != 0 && (mask >> w) & 1 == 1;
            let mut payloads: Vec<Vec<TensorPayload>> = Vec::with_capacity(workers);
            let mut accepted = 0usize;
            for w in 0..workers {
                // A rejected worker still compressed (its residual state
                // advances) — the server just never sees the bytes.
                let push = crafted_push(
                    &problem_a,
                    &mut ctxs[w],
                    kinds[w % kinds.len()].wrapping_add(step as u8),
                    seed ^ (w as u64) << 32 ^ step as u64,
                );
                if rejected(w) {
                    payloads.push(Vec::new());
                } else {
                    payloads.push(push);
                    accepted += 1;
                }
            }
            let out_a = server_a
                .apply_step(&payloads, accepted, 0.0)
                .expect("worker 0 always accepted");
            let out_b = server_b
                .apply_step(&payloads, accepted, 0.0)
                .expect("worker 0 always accepted");
            assert_outputs_identical(&out_a, &out_b, &format!("step {step}"))?;
        }
        prop_assert!(
            bits(&server_a.global().snapshot()) == bits(&server_b.global().snapshot()),
            "global model diverged"
        );
    }

    /// Full training loop (real gradients, error accumulation in every
    /// worker) with one worker's push rejected at a random step: pull
    /// wires, worker residual norms, and the final model must stay
    /// bit-identical between f32 and exact aggregation.
    #[test]
    fn exact_matches_f32_through_training(
        threads_idx in 0usize..4,
        drop_step in 0usize..4,
        drop_worker in 0usize..2,
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let workers = 2usize;
        let mut runs = [AggregateMode::F32, AggregateMode::Exact].map(|mode| {
            let problem = Problem::build(&config(workers, mode));
            let replicas: Vec<WorkerReplica> = (0..workers)
                .map(|w| WorkerReplica::new(&problem, w))
                .collect();
            let mut server = ServerCore::new(&problem);
            server.set_threads(threads);
            (problem, replicas, server)
        });

        for step in 0..4usize {
            let mut outs = Vec::with_capacity(2);
            for (problem, replicas, server) in runs.iter_mut() {
                let mut payloads = Vec::with_capacity(workers);
                let mut residual = 0.0f64;
                for w in replicas.iter_mut() {
                    let (_loss, grads) =
                        w.compute(&problem.data, problem.config.batch_per_worker);
                    payloads.push(w.encode_push(grads).payloads);
                    residual = residual.max(w.residual_l2());
                }
                let mut accepted = workers;
                if step == drop_step {
                    // The networked server rejects this worker's frame
                    // (bad CRC); the worker itself is none the wiser.
                    payloads[drop_worker].clear();
                    accepted -= 1;
                }
                let out = server
                    .apply_step(&payloads, accepted, residual)
                    .expect("at most one worker rejected");
                for w in replicas.iter_mut() {
                    w.apply_deltas(&out.step_deltas);
                    w.apply_policy(&out.next_decisions);
                }
                outs.push(out);
            }
            assert_outputs_identical(&outs[0], &outs[1], &format!("step {step}"))?;
            let residuals = |replicas: &[WorkerReplica]| -> Vec<u64> {
                replicas.iter().map(|w| w.residual_l2().to_bits()).collect()
            };
            prop_assert!(
                residuals(&runs[0].1) == residuals(&runs[1].1),
                "worker residual bit patterns diverged at step {step}"
            );
        }
        prop_assert!(
            bits(&runs[0].2.global().snapshot()) == bits(&runs[1].2.global().snapshot()),
            "global model diverged"
        );
    }
}
