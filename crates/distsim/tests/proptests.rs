//! Property-based tests for the simulated-time model.

use proptest::prelude::*;
use threelc_distsim::{NetworkModel, StepRecord, TimingModel};

fn any_record() -> impl Strategy<Value = StepRecord> {
    (
        0u64..10_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..100_000,
        1u64..1_000_000,
        0.0f64..0.1,
        0.0f64..0.1,
        0.5f64..3.0,
    )
        .prop_map(
            |(step, push, pull, raw, values, wcodec, scodec, mult)| StepRecord {
                step,
                lr: 0.1,
                loss: 1.0,
                push_bytes: push,
                pull_bytes: pull,
                raw_bytes: raw,
                compressible_values: values,
                worker_codec_seconds: wcodec,
                server_codec_seconds: scodec,
                compute_multiplier: mult,
                pull_overlapped: false,
                critical_bytes: 0,
                residual_l2: 0.0,
            },
        )
}

fn any_timing() -> impl Strategy<Value = TimingModel> {
    (0.01f64..2.0, 0.0f64..4.0, 1u64..10_000_000).prop_map(|(compute, overlap, reference)| {
        TimingModel {
            compute_seconds_per_step: compute,
            overlap_fraction: overlap,
            reference_params: reference,
            straggler_jitter: 0.0,
        }
    })
}

proptest! {
    #[test]
    fn step_time_monotone_in_bandwidth(
        r in any_record(),
        timing in any_timing(),
        scale in 0.1f64..100.0,
        bw_lo in 1e6f64..1e8,
        factor in 1.0f64..1000.0,
    ) {
        let slow = NetworkModel::new(bw_lo, 1e-3);
        let fast = NetworkModel::new(bw_lo * factor, 1e-3);
        prop_assert!(
            r.seconds_at(&fast, &timing, scale) <= r.seconds_at(&slow, &timing, scale) + 1e-12
        );
    }

    #[test]
    fn step_time_at_least_compute_plus_codec(
        r in any_record(),
        timing in any_timing(),
        scale in 0.1f64..100.0,
    ) {
        let net = NetworkModel::one_gbps();
        let floor = timing.compute_seconds_per_step * r.compute_multiplier
            + (r.worker_codec_seconds + r.server_codec_seconds) * scale;
        prop_assert!(r.seconds_at(&net, &timing, scale) >= floor - 1e-12);
    }

    #[test]
    fn step_time_monotone_in_bytes(
        r in any_record(),
        timing in any_timing(),
        scale in 0.1f64..100.0,
        extra in 0u64..1_000_000,
    ) {
        let net = NetworkModel::ten_mbps();
        let mut bigger = r;
        bigger.push_bytes += extra;
        prop_assert!(
            bigger.seconds_at(&net, &timing, scale)
                >= r.seconds_at(&net, &timing, scale) - 1e-12
        );
    }

    #[test]
    fn more_overlap_never_slower(
        r in any_record(),
        scale in 0.1f64..100.0,
        overlap in 0.0f64..4.0,
        more in 0.0f64..4.0,
    ) {
        let net = NetworkModel::hundred_mbps();
        let a = TimingModel { overlap_fraction: overlap, ..Default::default() };
        let b = TimingModel { overlap_fraction: overlap + more, ..Default::default() };
        prop_assert!(
            r.seconds_at(&net, &b, scale) <= r.seconds_at(&net, &a, scale) + 1e-12
        );
    }

    #[test]
    fn bits_per_value_consistent_with_bytes(r in any_record(), workers in 1u64..32) {
        let push_bits = r.push_bits_per_value(workers);
        let reconstructed = push_bits * (r.compressible_values * workers) as f64 / 8.0;
        prop_assert!((reconstructed - r.push_bytes as f64).abs() < 1e-6);
    }
}
