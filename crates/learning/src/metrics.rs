//! Evaluation metrics.

use crate::data::Batch;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Fraction of predictions matching labels (top-1 accuracy).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!labels.is_empty(), "cannot score an empty batch");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// A model evaluation snapshot: loss and top-1 test accuracy.
///
/// The paper's "dedicated node \[that\] reads the snapshot of the global
/// model and calculates the top-1 score" (§5.2) corresponds to calling
/// [`Evaluation::of`] on the server's global model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Mean cross-entropy loss over the batch.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
}

impl Evaluation {
    /// Evaluates a network on a batch (typically the full test set).
    pub fn of(net: &Network, batch: &Batch) -> Self {
        let loss = net.loss(batch);
        let preds = net.predict(&batch.inputs);
        Evaluation {
            loss,
            accuracy: accuracy(&preds, &batch.labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
        assert_eq!(accuracy(&[1], &[0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        accuracy(&[], &[]);
    }
}
