//! Batch normalization (Ioffe & Szegedy), the paper's canonical
//! "small layer" excluded from compression (§5.1).

use super::{Layer, LayerBackward, LayerCache};
use threelc_tensor::Tensor;

const EPS: f32 = 1e-5;

/// Batch normalization over the batch dimension of `[batch, features]`
/// activations: `y = γ·(x − μ)/√(σ² + ε) + β` with per-feature statistics
/// computed from the current batch.
///
/// The trainable `γ`/`β` tensors are small (2 × features), so — exactly as
/// in the paper's evaluation — the cluster simulator transmits them
/// uncompressed. Normalization always uses the current batch's statistics
/// (evaluation feeds the full test set as one batch, whose statistics are
/// population-accurate), which keeps `forward` a pure function.
#[derive(Debug, Clone)]
pub struct BatchNormLayer {
    name: String,
    gamma: Tensor,
    beta: Tensor,
}

impl BatchNormLayer {
    /// Creates a batch-norm layer over `features` features (γ = 1, β = 0).
    pub fn new(name: impl Into<String>, features: usize) -> Self {
        BatchNormLayer {
            name: name.into(),
            gamma: Tensor::ones([1, features]),
            beta: Tensor::zeros([1, features]),
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }
}

impl Layer for BatchNormLayer {
    fn kind(&self) -> &'static str {
        "batchnorm"
    }

    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let (b, f) = (input.shape().dim(0), input.shape().dim(1));
        assert!(b > 0, "batch norm needs a nonempty batch");
        let x = input.as_slice();
        let mut mean = vec![0.0f32; f];
        for r in 0..b {
            for (j, m) in mean.iter_mut().enumerate() {
                *m += x[r * f + j];
            }
        }
        for m in &mut mean {
            *m /= b as f32;
        }
        let mut var = vec![0.0f32; f];
        for r in 0..b {
            for (j, v) in var.iter_mut().enumerate() {
                let d = x[r * f + j] - mean[j];
                *v += d * d;
            }
        }
        for v in &mut var {
            *v /= b as f32;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();

        let gamma = self.gamma.as_slice();
        let beta = self.beta.as_slice();
        let mut x_hat = vec![0.0f32; b * f];
        let mut out = vec![0.0f32; b * f];
        for r in 0..b {
            for j in 0..f {
                let h = (x[r * f + j] - mean[j]) * inv_std[j];
                x_hat[r * f + j] = h;
                out[r * f + j] = gamma[j] * h + beta[j];
            }
        }
        (
            Tensor::from_vec(out, input.shape().clone()),
            LayerCache {
                tensors: vec![
                    Tensor::from_vec(x_hat, input.shape().clone()),
                    Tensor::from_vec(inv_std, [1, f]),
                ],
                children: Vec::new(),
            },
        )
    }

    fn backward(&self, cache: &LayerCache, grad_output: &Tensor) -> LayerBackward {
        let x_hat = &cache.tensors[0];
        let inv_std = cache.tensors[1].as_slice();
        let (b, f) = (grad_output.shape().dim(0), grad_output.shape().dim(1));
        let dy = grad_output.as_slice();
        let xh = x_hat.as_slice();
        let gamma = self.gamma.as_slice();

        // Per-feature reductions: Σ dy and Σ dy·x̂.
        let mut sum_dy = vec![0.0f32; f];
        let mut sum_dy_xhat = vec![0.0f32; f];
        for r in 0..b {
            for j in 0..f {
                sum_dy[j] += dy[r * f + j];
                sum_dy_xhat[j] += dy[r * f + j] * xh[r * f + j];
            }
        }

        // dx = γ/σ · (dy − mean(dy) − x̂ · mean(dy·x̂))
        let inv_b = 1.0 / b as f32;
        let mut dx = vec![0.0f32; b * f];
        for r in 0..b {
            for j in 0..f {
                let term =
                    dy[r * f + j] - sum_dy[j] * inv_b - xh[r * f + j] * sum_dy_xhat[j] * inv_b;
                dx[r * f + j] = gamma[j] * inv_std[j] * term;
            }
        }
        LayerBackward {
            grad_input: Tensor::from_vec(dx, grad_output.shape().clone()),
            param_grads: vec![
                Tensor::from_vec(sum_dy_xhat, [1, f]),
                Tensor::from_vec(sum_dy, [1, f]),
            ],
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn param_names(&self) -> Vec<String> {
        vec![
            format!("{}/gamma", self.name),
            format!("{}/beta", self.name),
        ]
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.features(), "batch norm feature mismatch");
        input_dim
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;
    use threelc_tensor::Initializer;

    #[test]
    fn output_is_normalized() {
        let bn = BatchNormLayer::new("bn", 2);
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0, 5.0, 30.0], [3, 2]);
        let (y, _) = bn.forward(&x);
        // Each feature column has mean ≈ 0 and unit variance.
        for j in 0..2 {
            let col: Vec<f32> = (0..3).map(|r| y.as_slice()[r * 2 + j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            let var: f32 = col.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "feature {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "feature {j} var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut bn = BatchNormLayer::new("bn", 1);
        bn.params_mut()[0].as_mut_slice()[0] = 2.0;
        bn.params_mut()[1].as_mut_slice()[0] = 5.0;
        let x = Tensor::from_vec(vec![-1.0, 1.0], [2, 1]);
        let (y, _) = bn.forward(&x);
        // x̂ = ±1 (var = 1) → y = ±2 + 5.
        assert!((y.as_slice()[0] - 3.0).abs() < 1e-3);
        assert!((y.as_slice()[1] - 7.0).abs() < 1e-3);
    }

    #[test]
    fn scale_invariance() {
        // Scaling the input must not change the output (the property that
        // makes networks robust to weight-scale blowup).
        let bn = BatchNormLayer::new("bn", 3);
        let mut rng = threelc_tensor::rng(0);
        let x = Initializer::Normal {
            mean: 1.0,
            std_dev: 2.0,
        }
        .init(&mut rng, [8, 3]);
        let (y1, _) = bn.forward(&x);
        let (y2, _) = bn.forward(&x.scale(100.0));
        assert!(y1.approx_eq(&y2, 1e-2), "batch norm must absorb scale");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = threelc_tensor::rng(1);
        let mut bn = BatchNormLayer::new("bn", 3);
        // Non-trivial gamma/beta.
        bn.params_mut()[0]
            .as_mut_slice()
            .copy_from_slice(&[1.5, 0.5, 2.0]);
        bn.params_mut()[1]
            .as_mut_slice()
            .copy_from_slice(&[0.1, -0.2, 0.3]);
        let x = Initializer::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .init(&mut rng, [5, 3]);
        check_layer(&mut bn, &x, 5e-2);
    }

    #[test]
    fn param_bookkeeping() {
        let bn = BatchNormLayer::new("blk/bn1", 7);
        assert_eq!(bn.param_names(), vec!["blk/bn1/gamma", "blk/bn1/beta"]);
        assert_eq!(bn.params().len(), 2);
        assert_eq!(bn.output_dim(7), 7);
        assert_eq!(bn.features(), 7);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_batch_panics() {
        BatchNormLayer::new("bn", 2).forward(&Tensor::zeros([0, 2]));
    }
}
