//! A generic residual wrapper around an arbitrary layer path.

use super::{Layer, LayerBackward, LayerCache};
use threelc_tensor::Tensor;

/// Wraps any stack of layers in an identity shortcut: `y = x + path(x)`.
///
/// The path must preserve dimensionality. [`ResidualBlock`](super::ResidualBlock)
/// is the dense specialization; this wrapper lets convolutional or custom
/// paths get the same identity mapping (the structural property the paper
/// picks ResNet for, §5.2).
pub struct Residual {
    path: Vec<Box<dyn Layer>>,
}

impl Residual {
    /// Wraps `path` in a shortcut.
    ///
    /// # Panics
    ///
    /// Dimension preservation is validated lazily by
    /// [`Layer::output_dim`] when the network is assembled.
    pub fn new(path: Vec<Box<dyn Layer>>) -> Self {
        Residual { path }
    }
}

impl Clone for Residual {
    fn clone(&self) -> Self {
        Residual {
            path: self.path.clone(),
        }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field(
                "path",
                &self.path.iter().map(|l| l.kind()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Layer for Residual {
    fn kind(&self) -> &'static str {
        "residual-any"
    }

    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let mut children = Vec::with_capacity(self.path.len());
        let mut h = input.clone();
        for layer in &self.path {
            let (out, cache) = layer.forward(&h);
            children.push(cache);
            h = out;
        }
        let out = input.add(&h).expect("residual path preserves shape");
        (
            out,
            LayerCache {
                tensors: Vec::new(),
                children,
            },
        )
    }

    fn backward(&self, cache: &LayerCache, grad_output: &Tensor) -> LayerBackward {
        let mut grad = grad_output.clone();
        let mut grads: Vec<Vec<Tensor>> = vec![Vec::new(); self.path.len()];
        for (i, layer) in self.path.iter().enumerate().rev() {
            let back = layer.backward(&cache.children[i], &grad);
            grad = back.grad_input;
            grads[i] = back.param_grads;
        }
        let grad_input = grad.add(grad_output).expect("shapes match");
        LayerBackward {
            grad_input,
            param_grads: grads.into_iter().flatten().collect(),
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        self.path.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.path.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn param_names(&self) -> Vec<String> {
        self.path.iter().flat_map(|l| l.param_names()).collect()
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        let out = self.path.iter().fold(input_dim, |d, l| l.output_dim(d));
        assert_eq!(out, input_dim, "residual path must preserve dimension");
        input_dim
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{gradcheck::check_layer, DenseLayer, ReluLayer};
    use threelc_tensor::Initializer;

    fn block(seed: u64) -> Residual {
        let mut rng = threelc_tensor::rng(seed);
        Residual::new(vec![
            Box::new(ReluLayer::new()),
            Box::new(DenseLayer::new("p/fc", 3, 3, &mut rng)),
        ])
    }

    #[test]
    fn identity_with_zero_path() {
        let mut r = block(0);
        for p in r.params_mut() {
            p.map_inplace(|_| 0.0);
        }
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], [1, 3]);
        let (y, _) = r.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = block(1);
        let mut rng = threelc_tensor::rng(2);
        let x = Initializer::Normal {
            mean: 0.3,
            std_dev: 1.0,
        }
        .init(&mut rng, [2, 3]);
        check_layer(&mut r, &x, 3e-2);
    }

    #[test]
    #[should_panic(expected = "preserve dimension")]
    fn dimension_changing_path_rejected() {
        let mut rng = threelc_tensor::rng(0);
        let r = Residual::new(vec![Box::new(DenseLayer::new("p", 3, 4, &mut rng))]);
        r.output_dim(3);
    }

    #[test]
    fn param_passthrough() {
        let r = block(3);
        assert_eq!(r.params().len(), 2);
        assert_eq!(r.param_names(), vec!["p/fc/weight", "p/fc/bias"]);
        assert!(format!("{r:?}").contains("dense"));
    }
}
