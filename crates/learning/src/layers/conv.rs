//! 2-D convolution over flattened `[batch, C·H·W]` activations.

use super::{Layer, LayerBackward, LayerCache};
use threelc_tensor::{Initializer, Rng, Tensor};

/// A same-padded 3×3-style 2-D convolution with stride 1.
///
/// Activations stay rank-2 (`[batch, channels·height·width]` row-major by
/// channel, then row, then column) so convolution composes with the other
/// layers; the layer carries its own spatial metadata. The weight tensor
/// `[C·K·K, O]` is the large state-change tensor the compression contexts
/// see — exactly the shape of the paper's convolutional workloads, where
/// most parameters sit in many medium-sized conv kernels.
///
/// Forward/backward use im2col: patches are gathered into a
/// `[H·W, C·K·K]` matrix per example so both passes reduce to matrix
/// multiplies.
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    name: String,
    in_channels: usize,
    out_channels: usize,
    height: usize,
    width: usize,
    kernel: usize,
    weight: Tensor,
    bias: Tensor,
}

impl Conv2dLayer {
    /// Creates a convolution layer with He-normal kernels and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even (same-padding needs an odd kernel) or
    /// any dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        height: usize,
        width: usize,
        kernel: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(kernel % 2 == 1, "same padding requires an odd kernel");
        assert!(
            in_channels * out_channels * height * width > 0,
            "dimensions must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        Conv2dLayer {
            name: name.into(),
            in_channels,
            out_channels,
            height,
            width,
            kernel,
            weight: Initializer::HeNormal { fan_in }.init(rng, [fan_in, out_channels]),
            bias: Tensor::zeros([1, out_channels]),
        }
    }

    /// Gathers input patches into a `[H·W, C·K·K]` matrix (im2col) for one
    /// example, padding out-of-range pixels with zero.
    fn im2col(&self, x: &[f32]) -> Tensor {
        let (c, h, w, k) = (self.in_channels, self.height, self.width, self.kernel);
        let half = (k / 2) as isize;
        let mut col = vec![0.0f32; h * w * c * k * k];
        let row_len = c * k * k;
        for y in 0..h as isize {
            for xx in 0..w as isize {
                let out_base = (y as usize * w + xx as usize) * row_len;
                for ci in 0..c {
                    for ky in -half..=half {
                        for kx in -half..=half {
                            let sy = y + ky;
                            let sx = xx + kx;
                            let col_idx = out_base
                                + ci * k * k
                                + ((ky + half) as usize) * k
                                + (kx + half) as usize;
                            if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                                col[col_idx] = x[ci * h * w + sy as usize * w + sx as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(col, [h * w, row_len])
    }

    /// Scatters a `[H·W, C·K·K]` patch-gradient matrix back onto the input
    /// image (col2im), accumulating overlaps.
    fn col2im(&self, col: &Tensor) -> Vec<f32> {
        let (c, h, w, k) = (self.in_channels, self.height, self.width, self.kernel);
        let half = (k / 2) as isize;
        let data = col.as_slice();
        let row_len = c * k * k;
        let mut out = vec![0.0f32; c * h * w];
        for y in 0..h as isize {
            for xx in 0..w as isize {
                let in_base = (y as usize * w + xx as usize) * row_len;
                for ci in 0..c {
                    for ky in -half..=half {
                        for kx in -half..=half {
                            let sy = y + ky;
                            let sx = xx + kx;
                            if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                                let col_idx = in_base
                                    + ci * k * k
                                    + ((ky + half) as usize) * k
                                    + (kx + half) as usize;
                                out[ci * h * w + sy as usize * w + sx as usize] += data[col_idx];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn in_dim(&self) -> usize {
        self.in_channels * self.height * self.width
    }

    fn out_dim_len(&self) -> usize {
        self.out_channels * self.height * self.width
    }
}

impl Layer for Conv2dLayer {
    fn kind(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let batch = input.shape().dim(0);
        assert_eq!(input.shape().dim(1), self.in_dim(), "conv input dim");
        let (h, w, o) = (self.height, self.width, self.out_channels);
        let mut out = vec![0.0f32; batch * self.out_dim_len()];
        let mut cols = Vec::with_capacity(batch);
        let bias = self.bias.as_slice();
        for b in 0..batch {
            let x = &input.as_slice()[b * self.in_dim()..(b + 1) * self.in_dim()];
            let col = self.im2col(x);
            // [H·W, CKK] × [CKK, O] = [H·W, O]
            let prod = col.matmul(&self.weight).expect("im2col dims match");
            let p = prod.as_slice();
            let out_b = &mut out[b * self.out_dim_len()..(b + 1) * self.out_dim_len()];
            for pix in 0..h * w {
                for oc in 0..o {
                    out_b[oc * h * w + pix] = p[pix * o + oc] + bias[oc];
                }
            }
            cols.push(col);
        }
        let mut cache_tensors = vec![];
        cache_tensors.extend(cols);
        (
            Tensor::from_vec(out, [batch, self.out_dim_len()]),
            LayerCache {
                tensors: cache_tensors,
                children: Vec::new(),
            },
        )
    }

    fn backward(&self, cache: &LayerCache, grad_output: &Tensor) -> LayerBackward {
        let batch = grad_output.shape().dim(0);
        let (h, w, o) = (self.height, self.width, self.out_channels);
        let row_len = self.in_channels * self.kernel * self.kernel;
        let mut grad_weight = Tensor::zeros(self.weight.shape().clone());
        let mut grad_bias = vec![0.0f32; o];
        let mut grad_input = vec![0.0f32; batch * self.in_dim()];
        let w_t = self.weight.transpose().expect("rank 2");
        for b in 0..batch {
            let col = &cache.tensors[b];
            let go = &grad_output.as_slice()[b * self.out_dim_len()..(b + 1) * self.out_dim_len()];
            // Reassemble dY as [H·W, O].
            let mut dy = vec![0.0f32; h * w * o];
            for pix in 0..h * w {
                for oc in 0..o {
                    let g = go[oc * h * w + pix];
                    dy[pix * o + oc] = g;
                    grad_bias[oc] += g;
                }
            }
            let dy = Tensor::from_vec(dy, [h * w, o]);
            // dW += colᵀ · dY
            let col_t = col.transpose().expect("rank 2");
            let dw = col_t.matmul(&dy).expect("dims match");
            grad_weight.add_assign(&dw).expect("same shape");
            // dcol = dY · Wᵀ, then scatter back.
            let dcol = dy.matmul(&w_t).expect("dims match");
            debug_assert_eq!(dcol.shape().dims(), &[h * w, row_len]);
            let dx = self.col2im(&dcol);
            grad_input[b * self.in_dim()..(b + 1) * self.in_dim()].copy_from_slice(&dx);
        }
        LayerBackward {
            grad_input: Tensor::from_vec(grad_input, [batch, self.in_dim()]),
            param_grads: vec![grad_weight, Tensor::from_vec(grad_bias, [1, o])],
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn param_names(&self) -> Vec<String> {
        vec![
            format!("{}/weight", self.name),
            format!("{}/bias", self.name),
        ]
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.in_dim(), "conv2d input dim mismatch");
        self.out_dim_len()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `[batch, C·H·W]` → `[batch, C]`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPoolLayer {
    channels: usize,
    spatial: usize,
}

impl GlobalAvgPoolLayer {
    /// Creates a pooling layer over `channels` maps of `height × width`.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        GlobalAvgPoolLayer {
            channels,
            spatial: height * width,
        }
    }
}

impl Layer for GlobalAvgPoolLayer {
    fn kind(&self) -> &'static str {
        "gap"
    }

    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let batch = input.shape().dim(0);
        let (c, s) = (self.channels, self.spatial);
        let x = input.as_slice();
        let mut out = vec![0.0f32; batch * c];
        for b in 0..batch {
            for ci in 0..c {
                let base = b * c * s + ci * s;
                out[b * c + ci] = x[base..base + s].iter().sum::<f32>() / s as f32;
            }
        }
        (Tensor::from_vec(out, [batch, c]), LayerCache::empty())
    }

    fn backward(&self, _cache: &LayerCache, grad_output: &Tensor) -> LayerBackward {
        let batch = grad_output.shape().dim(0);
        let (c, s) = (self.channels, self.spatial);
        let dy = grad_output.as_slice();
        let mut dx = vec![0.0f32; batch * c * s];
        for b in 0..batch {
            for ci in 0..c {
                let g = dy[b * c + ci] / s as f32;
                let base = b * c * s + ci * s;
                for v in &mut dx[base..base + s] {
                    *v = g;
                }
            }
        }
        LayerBackward {
            grad_input: Tensor::from_vec(dx, [batch, c * s]),
            param_grads: Vec::new(),
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn param_names(&self) -> Vec<String> {
        Vec::new()
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(
            input_dim,
            self.channels * self.spatial,
            "gap input dim mismatch"
        );
        self.channels
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn identity_kernel_preserves_input() {
        // 1×1 "kernel" with weight 1 on a single channel = identity.
        let mut rng = threelc_tensor::rng(0);
        let mut conv = Conv2dLayer::new("c", 1, 1, 3, 3, 1, &mut rng);
        conv.params_mut()[0].as_mut_slice()[0] = 1.0;
        let x = Tensor::from_fn([1, 9], |i| i as f32);
        let (y, _) = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        // A 3×3 all-ones kernel on a uniform image sums the neighborhood:
        // interior pixels see 9 ones, corners 4, edges 6.
        let mut rng = threelc_tensor::rng(0);
        let mut conv = Conv2dLayer::new("c", 1, 1, 3, 3, 3, &mut rng);
        for v in conv.params_mut()[0].as_mut_slice() {
            *v = 1.0;
        }
        let x = Tensor::ones([1, 9]);
        let (y, _) = conv.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn bias_broadcasts_per_channel() {
        let mut rng = threelc_tensor::rng(0);
        let mut conv = Conv2dLayer::new("c", 1, 2, 2, 2, 1, &mut rng);
        for v in conv.params_mut()[0].as_mut_slice() {
            *v = 0.0;
        }
        conv.params_mut()[1]
            .as_mut_slice()
            .copy_from_slice(&[1.0, -1.0]);
        let x = Tensor::zeros([1, 4]);
        let (y, _) = conv.forward(&x);
        assert_eq!(y.as_slice(), &[1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = threelc_tensor::rng(1);
        let mut conv = Conv2dLayer::new("c", 2, 2, 3, 3, 3, &mut rng);
        let x = Initializer::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .init(&mut rng, [2, 18]);
        check_layer(&mut conv, &x, 3e-2);
    }

    #[test]
    fn gap_averages_each_channel() {
        let gap = GlobalAvgPoolLayer::new(2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], [1, 8]);
        let (y, _) = gap.forward(&x);
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
        assert_eq!(gap.output_dim(8), 2);
    }

    #[test]
    fn gap_gradients_match_finite_differences() {
        let mut rng = threelc_tensor::rng(2);
        let x = Initializer::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .init(&mut rng, [2, 12]);
        check_layer(&mut GlobalAvgPoolLayer::new(3, 2, 2), &x, 1e-2);
    }

    #[test]
    fn param_bookkeeping() {
        let conv = Conv2dLayer::new("conv1", 3, 16, 8, 8, 3, &mut threelc_tensor::rng(0));
        assert_eq!(conv.params()[0].shape().dims(), &[27, 16]);
        assert_eq!(conv.params()[1].shape().dims(), &[1, 16]);
        assert_eq!(conv.param_names(), vec!["conv1/weight", "conv1/bias"]);
        assert_eq!(conv.output_dim(3 * 64), 16 * 64);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_panics() {
        Conv2dLayer::new("c", 1, 1, 3, 3, 2, &mut threelc_tensor::rng(0));
    }
}
