//! Network layers with manual backpropagation.
//!
//! Every layer implements [`Layer`]: a pure `forward` that returns the
//! output plus a [`LayerCache`] of whatever intermediate tensors `backward`
//! needs, and a `backward` that consumes the cache and the upstream
//! gradient to produce the input gradient and per-parameter gradients.
//! Keeping the cache explicit (instead of hiding state in the layer) makes
//! layers `&self` during the forward/backward pair, which is what lets the
//! cluster simulator run several logical workers over clones of one
//! network without interior mutability.

mod batchnorm;
mod conv;
mod dense;
mod relu;
mod residual;
mod residual_any;

pub use batchnorm::BatchNormLayer;
pub use conv::{Conv2dLayer, GlobalAvgPoolLayer};
pub use dense::DenseLayer;
pub use relu::ReluLayer;
pub use residual::ResidualBlock;
pub use residual_any::Residual;

use threelc_tensor::Tensor;

/// Intermediate tensors saved by a forward pass for use in backward.
///
/// The contents are layer-specific; a layer's `backward` must be given the
/// cache produced by its own `forward`.
#[derive(Debug, Clone, Default)]
pub struct LayerCache {
    /// Saved tensors, in layer-defined order.
    pub tensors: Vec<Tensor>,
    /// Caches of nested layers (used by composite layers like
    /// [`ResidualBlock`]).
    pub children: Vec<LayerCache>,
}

impl LayerCache {
    /// An empty cache (for parameterless pass-through layers).
    pub fn empty() -> Self {
        LayerCache::default()
    }
}

/// Result of a layer's backward pass.
#[derive(Debug, Clone)]
pub struct LayerBackward {
    /// Gradient of the loss with respect to the layer's input.
    pub grad_input: Tensor,
    /// Gradients for each parameter, in the same order as
    /// [`Layer::params`].
    pub param_grads: Vec<Tensor>,
}

/// A differentiable network layer.
///
/// Layers operate on rank-2 activations `[batch, features]`.
pub trait Layer: Send {
    /// A short human-readable layer type name (e.g. `"dense"`).
    fn kind(&self) -> &'static str;

    /// Computes the layer output and the cache `backward` will need.
    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache);

    /// Computes input and parameter gradients from the upstream gradient.
    ///
    /// # Panics
    ///
    /// May panic if `cache` was not produced by this layer's `forward` on a
    /// compatible input.
    fn backward(&self, cache: &LayerCache, grad_output: &Tensor) -> LayerBackward;

    /// Immutable views of the layer's parameter tensors.
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable views of the layer's parameter tensors, in the same order.
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Names for each parameter (used to key per-tensor compression
    /// contexts), in the same order as [`Layer::params`].
    fn param_names(&self) -> Vec<String>;

    /// Number of output features given `input_dim` input features.
    fn output_dim(&self, input_dim: usize) -> usize;

    /// Clones the layer behind a box (lets [`Network`](crate::Network)
    /// implement `Clone` over `Box<dyn Layer>` stacks — each simulated
    /// worker holds its own copy of the model).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::*;

    /// Verifies `backward` against central finite differences through a
    /// scalar loss `sum(output * probe)`.
    ///
    /// `probe` makes the upstream gradient non-uniform, catching transposed
    /// or mis-indexed gradients that a constant probe would miss.
    pub fn check_layer(layer: &mut dyn Layer, input: &Tensor, tol: f32) {
        let (out, cache) = layer.forward(input);
        let probe = Tensor::from_fn(out.shape().clone(), |i| ((i % 7) as f32 - 3.0) * 0.25);
        let back = layer.backward(&cache, &probe);

        let eps = 1e-3f32;
        // Input gradient.
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let (op, _) = layer.forward(&plus);
            let (om, _) = layer.forward(&minus);
            let num = (op.dot(&probe).unwrap() - om.dot(&probe).unwrap()) / (2.0 * eps);
            let ana = back.grad_input.as_slice()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "input grad [{i}]: numeric {num} vs analytic {ana}"
            );
        }
        // Parameter gradients.
        let n_params = layer.params().len();
        for p in 0..n_params {
            let plen = layer.params()[p].len();
            for i in 0..plen {
                let orig = layer.params()[p].as_slice()[i];
                layer.params_mut()[p].as_mut_slice()[i] = orig + eps;
                let (op, _) = layer.forward(input);
                layer.params_mut()[p].as_mut_slice()[i] = orig - eps;
                let (om, _) = layer.forward(input);
                layer.params_mut()[p].as_mut_slice()[i] = orig;
                let num = (op.dot(&probe).unwrap() - om.dot(&probe).unwrap()) / (2.0 * eps);
                let ana = back.param_grads[p].as_slice()[i];
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "param {p} grad [{i}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }
}
