//! Rectified linear unit activation.

use super::{Layer, LayerBackward, LayerCache};
use threelc_tensor::Tensor;

/// Elementwise `max(0, x)` activation. Parameterless.
#[derive(Debug, Clone, Default)]
pub struct ReluLayer;

impl ReluLayer {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReluLayer
    }
}

impl Layer for ReluLayer {
    fn kind(&self) -> &'static str {
        "relu"
    }

    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let out = input.map(|x| x.max(0.0));
        (
            out,
            LayerCache {
                tensors: vec![input.clone()],
                children: Vec::new(),
            },
        )
    }

    fn backward(&self, cache: &LayerCache, grad_output: &Tensor) -> LayerBackward {
        let input = &cache.tensors[0];
        let grad_input = input
            .zip_with(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })
            .expect("cache input matches grad shape");
        LayerBackward {
            grad_input,
            param_grads: Vec::new(),
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn param_names(&self) -> Vec<String> {
        Vec::new()
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn forward_clamps_negatives() {
        let (y, _) =
            ReluLayer::new().forward(&Tensor::from_vec(vec![-1.0, 0.0, 2.0, -0.5], [2, 2]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let relu = ReluLayer::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], [1, 2]);
        let (_, cache) = relu.forward(&x);
        let back = relu.backward(&cache, &Tensor::from_vec(vec![5.0, 7.0], [1, 2]));
        assert_eq!(back.grad_input.as_slice(), &[0.0, 7.0]);
        assert!(back.param_grads.is_empty());
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Keep inputs away from the kink at 0 for a clean check.
        let x = Tensor::from_vec(vec![-1.0, 2.0, -0.6, 0.7, 1.4, -2.0], [2, 3]);
        check_layer(&mut ReluLayer::new(), &x, 1e-2);
    }

    #[test]
    fn no_params() {
        let relu = ReluLayer::new();
        assert!(relu.params().is_empty());
        assert!(relu.param_names().is_empty());
        assert_eq!(relu.output_dim(17), 17);
    }
}
