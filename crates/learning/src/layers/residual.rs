//! Residual (identity-mapping) blocks.

use super::{BatchNormLayer, DenseLayer, Layer, LayerBackward, LayerCache, ReluLayer};
use threelc_tensor::{Rng, Tensor};

/// A pre-activation residual block:
/// `y = x + W₂·relu(bn₂(W₁·relu(bn₁(x))))`.
///
/// The paper deliberately evaluates on ResNet because identity mappings are
/// the common building block of modern high-accuracy architectures and
/// their small parameter-to-computation ratio stresses communication
/// reduction (§5.2). This block carries the same structural property into
/// the substitute workload: the gradient flows both through the shortcut
/// and the transform path.
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    bn1: BatchNormLayer,
    relu1: ReluLayer,
    dense1: DenseLayer,
    bn2: BatchNormLayer,
    relu2: ReluLayer,
    dense2: DenseLayer,
}

impl ResidualBlock {
    /// Creates a residual block over `dim` features with a `hidden`-wide
    /// transform path.
    pub fn new(name: &str, dim: usize, hidden: usize, rng: &mut Rng) -> Self {
        ResidualBlock {
            bn1: BatchNormLayer::new(format!("{name}/bn1"), dim),
            relu1: ReluLayer::new(),
            dense1: DenseLayer::new(format!("{name}/fc1"), dim, hidden, rng),
            bn2: BatchNormLayer::new(format!("{name}/bn2"), hidden),
            relu2: ReluLayer::new(),
            dense2: DenseLayer::new(format!("{name}/fc2"), hidden, dim, rng),
        }
    }

    fn path(&self) -> [&dyn Layer; 6] {
        [
            &self.bn1,
            &self.relu1,
            &self.dense1,
            &self.bn2,
            &self.relu2,
            &self.dense2,
        ]
    }
}

impl Layer for ResidualBlock {
    fn kind(&self) -> &'static str {
        "residual"
    }

    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let mut children = Vec::with_capacity(6);
        let mut h = input.clone();
        for layer in self.path() {
            let (out, cache) = layer.forward(&h);
            children.push(cache);
            h = out;
        }
        let out = input.add(&h).expect("residual path preserves shape");
        (
            out,
            LayerCache {
                tensors: Vec::new(),
                children,
            },
        )
    }

    fn backward(&self, cache: &LayerCache, grad_output: &Tensor) -> LayerBackward {
        // Backprop through the transform path in reverse.
        let mut grad = grad_output.clone();
        let path = self.path();
        let mut path_param_grads: Vec<Vec<Tensor>> = vec![Vec::new(); path.len()];
        for (i, layer) in path.iter().enumerate().rev() {
            let back = layer.backward(&cache.children[i], &grad);
            grad = back.grad_input;
            path_param_grads[i] = back.param_grads;
        }
        // Shortcut: the identity contributes grad_output directly.
        let grad_input = grad.add(grad_output).expect("shapes match");
        LayerBackward {
            grad_input,
            param_grads: path_param_grads.into_iter().flatten().collect(),
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut p = self.bn1.params();
        p.extend(self.dense1.params());
        p.extend(self.bn2.params());
        p.extend(self.dense2.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.bn1.params_mut();
        p.extend(self.dense1.params_mut());
        p.extend(self.bn2.params_mut());
        p.extend(self.dense2.params_mut());
        p
    }

    fn param_names(&self) -> Vec<String> {
        let mut n = self.bn1.param_names();
        n.extend(self.dense1.param_names());
        n.extend(self.bn2.param_names());
        n.extend(self.dense2.param_names());
        n
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(
            input_dim,
            self.dense1.in_dim(),
            "residual block input dim mismatch"
        );
        input_dim
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;
    use threelc_tensor::Initializer;

    #[test]
    fn identity_preserved_with_zero_weights() {
        let mut rng = threelc_tensor::rng(0);
        let mut block = ResidualBlock::new("r", 3, 5, &mut rng);
        for p in block.params_mut() {
            p.map_inplace(|_| 0.0);
        }
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], [1, 3]);
        let (y, _) = block.forward(&x);
        assert_eq!(y, x, "zero transform path must reduce to identity");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = threelc_tensor::rng(3);
        let mut block = ResidualBlock::new("r", 3, 4, &mut rng);
        let x = Initializer::Normal {
            mean: 0.5,
            std_dev: 1.0,
        }
        .init(&mut rng, [2, 3]);
        check_layer(&mut block, &x, 3e-2);
    }

    #[test]
    fn shortcut_always_passes_gradient() {
        // Even with all-zero weights (transform path dead), the input
        // gradient equals the output gradient through the shortcut.
        let mut rng = threelc_tensor::rng(1);
        let mut block = ResidualBlock::new("r", 2, 2, &mut rng);
        for p in block.params_mut() {
            p.map_inplace(|_| 0.0);
        }
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        let (_, cache) = block.forward(&x);
        let g = Tensor::from_vec(vec![0.3, -0.7], [1, 2]);
        let back = block.backward(&cache, &g);
        assert_eq!(back.grad_input, g);
    }

    #[test]
    fn param_bookkeeping() {
        let block = ResidualBlock::new("blk0", 4, 8, &mut threelc_tensor::rng(0));
        assert_eq!(block.params().len(), 8);
        assert_eq!(
            block.param_names(),
            vec![
                "blk0/bn1/gamma",
                "blk0/bn1/beta",
                "blk0/fc1/weight",
                "blk0/fc1/bias",
                "blk0/bn2/gamma",
                "blk0/bn2/beta",
                "blk0/fc2/weight",
                "blk0/fc2/bias"
            ]
        );
        assert_eq!(block.output_dim(4), 4);
    }
}
