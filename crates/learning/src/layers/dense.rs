//! Fully-connected (dense) layers.

use super::{Layer, LayerBackward, LayerCache};
use threelc_tensor::{Initializer, Rng, Tensor};

/// A fully-connected layer: `y = x · W + b`.
///
/// `W` has shape `[in, out]` and `b` shape `[1, out]`. The weight tensor is
/// the kind of large 2-D state-change tensor the paper's compression
/// contexts operate on; the bias plays the role of the "small layers"
/// (batch normalization in the paper) that 3LC's evaluation excludes from
/// compression.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    name: String,
    weight: Tensor,
    bias: Tensor,
}

impl DenseLayer {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(name: impl Into<String>, in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        DenseLayer {
            name: name.into(),
            weight: Initializer::HeNormal { fan_in: in_dim }.init(rng, [in_dim, out_dim]),
            bias: Tensor::zeros([1, out_dim]),
        }
    }

    /// Creates a dense layer with Xavier-uniform weights (for the final
    /// logit layer, which is not followed by a ReLU).
    pub fn new_xavier(
        name: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        DenseLayer {
            name: name.into(),
            weight: Initializer::XavierUniform {
                fan_in: in_dim,
                fan_out: out_dim,
            }
            .init(rng, [in_dim, out_dim]),
            bias: Tensor::zeros([1, out_dim]),
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.weight.shape().dim(0)
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.weight.shape().dim(1)
    }
}

impl Layer for DenseLayer {
    fn kind(&self) -> &'static str {
        "dense"
    }

    fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let mut out = input.matmul(&self.weight).expect("input dims match weight");
        let (batch, out_dim) = (out.shape().dim(0), out.shape().dim(1));
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for r in 0..batch {
            for c in 0..out_dim {
                data[r * out_dim + c] += bias[c];
            }
        }
        (
            out,
            LayerCache {
                tensors: vec![input.clone()],
                children: Vec::new(),
            },
        )
    }

    fn backward(&self, cache: &LayerCache, grad_output: &Tensor) -> LayerBackward {
        let input = &cache.tensors[0];
        // dX = dY · Wᵀ ; dW = Xᵀ · dY ; db = column-sum(dY).
        let w_t = self.weight.transpose().expect("weight is rank 2");
        let grad_input = grad_output.matmul(&w_t).expect("grad dims match");
        let x_t = input.transpose().expect("input is rank 2");
        let grad_weight = x_t.matmul(grad_output).expect("grad dims match");
        let (batch, out_dim) = (grad_output.shape().dim(0), grad_output.shape().dim(1));
        let mut grad_bias = vec![0.0f32; out_dim];
        let g = grad_output.as_slice();
        for r in 0..batch {
            for c in 0..out_dim {
                grad_bias[c] += g[r * out_dim + c];
            }
        }
        LayerBackward {
            grad_input,
            param_grads: vec![grad_weight, Tensor::from_vec(grad_bias, [1, out_dim])],
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn param_names(&self) -> Vec<String> {
        vec![
            format!("{}/weight", self.name),
            format!("{}/bias", self.name),
        ]
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        assert_eq!(input_dim, self.in_dim(), "dense layer input dim mismatch");
        self.out_dim()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn forward_known_values() {
        let mut layer = DenseLayer::new("d", 2, 2, &mut threelc_tensor::rng(0));
        // Overwrite with known weights.
        layer.params_mut()[0]
            .as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        layer.params_mut()[1]
            .as_mut_slice()
            .copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]);
        let (y, _) = layer.forward(&x);
        // [1,1]·[[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = threelc_tensor::rng(1);
        let mut layer = DenseLayer::new("d", 3, 4, &mut rng);
        let x = Initializer::Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
        .init(&mut rng, [2, 3]);
        check_layer(&mut layer, &x, 2e-2);
    }

    #[test]
    fn param_names_and_shapes() {
        let layer = DenseLayer::new("fc1", 8, 4, &mut threelc_tensor::rng(0));
        assert_eq!(layer.param_names(), vec!["fc1/weight", "fc1/bias"]);
        assert_eq!(layer.params()[0].shape().dims(), &[8, 4]);
        assert_eq!(layer.params()[1].shape().dims(), &[1, 4]);
        assert_eq!(layer.output_dim(8), 4);
    }

    #[test]
    fn xavier_constructor_bounds() {
        let layer = DenseLayer::new_xavier("out", 10, 5, &mut threelc_tensor::rng(2));
        let a = (6.0f32 / 15.0).sqrt();
        assert!(layer.params()[0].iter().all(|&x| x.abs() < a));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn output_dim_validates_input() {
        DenseLayer::new("d", 3, 4, &mut threelc_tensor::rng(0)).output_dim(5);
    }
}
