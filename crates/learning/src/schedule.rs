//! Learning-rate schedules.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule over a fixed number of total training steps.
///
/// The paper uses cosine decay without restarts (Loshchilov & Hutter) from
/// 0.1 to 0.001 and notes that the schedule always spans the *adjusted*
/// total step count — when an experiment runs 25% of standard steps, the
/// cosine sweeps the full learning-rate range over those fewer steps
/// (§5.2 "Measurement Methodology"). [`LrSchedule::with_total_steps`]
/// implements that re-stretching.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// A constant learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
        /// Total steps (kept for re-stretching symmetry).
        total_steps: u64,
    },
    /// Cosine decay without restarts from `lr_max` to `lr_min`.
    Cosine {
        /// Initial learning rate.
        lr_max: f32,
        /// Final learning rate.
        lr_min: f32,
        /// Total steps the decay spans.
        total_steps: u64,
    },
    /// Stepwise decay: multiply by `factor` at each milestone fraction.
    Stepwise {
        /// Initial learning rate.
        lr0: f32,
        /// Multiplicative factor applied at each milestone.
        factor: f32,
        /// Fractions of `total_steps` at which to decay (must be sorted).
        milestones: [f32; 2],
        /// Total steps.
        total_steps: u64,
    },
}

impl LrSchedule {
    /// The paper's schedule: cosine decay from 0.1 to 0.001.
    pub fn paper_default(total_steps: u64) -> Self {
        LrSchedule::cosine(0.1, 0.001, total_steps)
    }

    /// Cosine decay without restarts.
    pub fn cosine(lr_max: f32, lr_min: f32, total_steps: u64) -> Self {
        LrSchedule::Cosine {
            lr_max,
            lr_min,
            total_steps,
        }
    }

    /// The learning rate at step `t` (0-based).
    pub fn lr_at(&self, t: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr, .. } => lr,
            LrSchedule::Cosine {
                lr_max,
                lr_min,
                total_steps,
            } => {
                if total_steps <= 1 {
                    return lr_max;
                }
                let progress = (t.min(total_steps - 1)) as f64 / (total_steps - 1) as f64;
                let cos = 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
                (lr_min as f64 + (lr_max as f64 - lr_min as f64) * cos) as f32
            }
            LrSchedule::Stepwise {
                lr0,
                factor,
                milestones,
                total_steps,
            } => {
                let progress = t as f64 / total_steps.max(1) as f64;
                let hits = milestones.iter().filter(|&&m| progress >= m as f64).count() as i32;
                lr0 * factor.powi(hits)
            }
        }
    }

    /// The same schedule re-stretched over a different total step count
    /// (used for the 25/50/75% runs in Figures 4–6).
    pub fn with_total_steps(&self, total_steps: u64) -> Self {
        match *self {
            LrSchedule::Constant { lr, .. } => LrSchedule::Constant { lr, total_steps },
            LrSchedule::Cosine { lr_max, lr_min, .. } => LrSchedule::Cosine {
                lr_max,
                lr_min,
                total_steps,
            },
            LrSchedule::Stepwise {
                lr0,
                factor,
                milestones,
                ..
            } => LrSchedule::Stepwise {
                lr0,
                factor,
                milestones,
                total_steps,
            },
        }
    }

    /// Total steps the schedule spans.
    pub fn total_steps(&self) -> u64 {
        match *self {
            LrSchedule::Constant { total_steps, .. }
            | LrSchedule::Cosine { total_steps, .. }
            | LrSchedule::Stepwise { total_steps, .. } => total_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::cosine(0.1, 0.001, 1000);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(999) - 0.001).abs() < 1e-7);
        // Past the end it stays at the minimum.
        assert!((s.lr_at(5000) - 0.001).abs() < 1e-7);
    }

    #[test]
    fn cosine_midpoint_is_mean() {
        let s = LrSchedule::cosine(0.1, 0.0, 1001);
        assert!((s.lr_at(500) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn cosine_monotonically_decreasing() {
        let s = LrSchedule::paper_default(500);
        let mut prev = f32::INFINITY;
        for t in 0..500 {
            let lr = s.lr_at(t);
            assert!(lr <= prev + 1e-9, "lr increased at step {t}");
            prev = lr;
        }
    }

    #[test]
    fn restretch_sweeps_full_range() {
        let s = LrSchedule::paper_default(1000).with_total_steps(250);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(249) - 0.001).abs() < 1e-7);
        assert_eq!(s.total_steps(), 250);
    }

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::Constant {
            lr: 0.05,
            total_steps: 10,
        };
        assert_eq!(s.lr_at(0), 0.05);
        assert_eq!(s.lr_at(9), 0.05);
    }

    #[test]
    fn stepwise_milestones() {
        let s = LrSchedule::Stepwise {
            lr0: 0.1,
            factor: 0.1,
            milestones: [0.5, 0.75],
            total_steps: 100,
        };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(49) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(50) - 0.01).abs() < 1e-7);
        assert!((s.lr_at(75) - 0.001).abs() < 1e-7);
    }

    #[test]
    fn degenerate_single_step() {
        let s = LrSchedule::cosine(0.1, 0.001, 1);
        assert_eq!(s.lr_at(0), 0.1);
    }
}
