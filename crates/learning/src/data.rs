//! Synthetic CIFAR-like image classification data.
//!
//! The paper trains on CIFAR-10 (50k train / 10k test images, 10 classes)
//! with random-crop and horizontal-flip augmentation. This module generates
//! a procedural stand-in: each class has a smooth random prototype image
//! and samples are prototypes plus Gaussian pixel noise, so the task is
//! learnable but not trivially separable. Training batches get the same
//! augmentations (random shift — the crop analog — and horizontal flip);
//! test data is clean and fixed.
//!
//! What matters for reproducing 3LC's evaluation is not the images
//! themselves but that training produces gradient/model-delta tensors whose
//! variance shrinks as the model converges — which this dataset induces
//! exactly as a real one does (see `DESIGN.md` §3).

use rand::Rng as _;
use threelc_tensor::init::sample_standard_normal;
use threelc_tensor::{Rng, Tensor};

/// Shape metadata for an image dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataSpec {
    /// Color channels.
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
}

impl DataSpec {
    /// Flattened feature dimensionality (`channels · height · width`).
    pub fn feature_dim(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// A minibatch: row-major inputs `[batch, features]` plus class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Input features, one row per example.
    pub inputs: Tensor,
    /// Class label per row.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Configuration for [`SyntheticImages`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Dataset shape.
    pub spec: DataSpec,
    /// Training examples to generate.
    pub train_examples: usize,
    /// Test examples to generate.
    pub test_examples: usize,
    /// Prototype signal amplitude (class separation).
    pub signal: f32,
    /// Per-pixel Gaussian noise standard deviation.
    pub noise: f32,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            spec: DataSpec {
                channels: 3,
                height: 8,
                width: 8,
                classes: 10,
            },
            train_examples: 4096,
            test_examples: 1024,
            signal: 0.4,
            noise: 1.0,
        }
    }
}

/// A procedurally generated image classification dataset.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    config: SyntheticConfig,
    train_images: Vec<Vec<f32>>,
    train_labels: Vec<usize>,
    test_images: Vec<Vec<f32>>,
    test_labels: Vec<usize>,
}

impl SyntheticImages {
    /// Generates a dataset with the default configuration and a seed.
    pub fn standard(seed: u64) -> Self {
        Self::generate(SyntheticConfig::default(), seed)
    }

    /// Generates a dataset from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero classes, examples, or pixels.
    pub fn generate(config: SyntheticConfig, seed: u64) -> Self {
        assert!(config.spec.classes > 0, "need at least one class");
        assert!(config.spec.feature_dim() > 0, "need at least one pixel");
        assert!(
            config.train_examples > 0 && config.test_examples > 0,
            "need nonempty splits"
        );
        let mut rng = threelc_tensor::rng(seed);
        let dim = config.spec.feature_dim();

        // Smooth class prototypes: a sum of a few random sinusoids per
        // channel keeps prototypes spatially coherent (so shifts are mild
        // perturbations, as crops are for natural images).
        let prototypes: Vec<Vec<f32>> = (0..config.spec.classes)
            .map(|_| smooth_prototype(&config.spec, config.signal, &mut rng))
            .collect();

        let gen_split = |count: usize, rng: &mut Rng| {
            let mut images = Vec::with_capacity(count);
            let mut labels = Vec::with_capacity(count);
            for i in 0..count {
                let label = i % config.spec.classes;
                let mut img = prototypes[label].clone();
                for px in &mut img {
                    *px += config.noise * sample_standard_normal(rng);
                }
                images.push(img);
                labels.push(label);
            }
            debug_assert!(images.iter().all(|im| im.len() == dim));
            (images, labels)
        };
        let (train_images, train_labels) = gen_split(config.train_examples, &mut rng);
        let (test_images, test_labels) = gen_split(config.test_examples, &mut rng);
        SyntheticImages {
            config,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// The dataset's shape metadata.
    pub fn spec(&self) -> DataSpec {
        self.config.spec
    }

    /// Number of training examples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test examples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }

    /// Samples an augmented training batch (random shift + horizontal
    /// flip, the analog of the paper's crop + flip augmentation).
    pub fn sample_train_batch(&self, rng: &mut Rng, batch_size: usize) -> Batch {
        assert!(batch_size > 0, "batch size must be positive");
        let dim = self.config.spec.feature_dim();
        let mut inputs = Vec::with_capacity(batch_size * dim);
        let mut labels = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let idx = rng.gen_range(0..self.train_images.len());
            let dx = rng.gen_range(-1isize..=1);
            let dy = rng.gen_range(-1isize..=1);
            let flip = rng.gen::<bool>();
            let img = augment(&self.train_images[idx], &self.config.spec, dx, dy, flip);
            inputs.extend_from_slice(&img);
            labels.push(self.train_labels[idx]);
        }
        Batch {
            inputs: Tensor::from_vec(inputs, [batch_size, dim]),
            labels,
        }
    }

    /// The full, unaugmented test set as one batch.
    pub fn test_batch(&self) -> Batch {
        let dim = self.config.spec.feature_dim();
        let mut inputs = Vec::with_capacity(self.test_images.len() * dim);
        for img in &self.test_images {
            inputs.extend_from_slice(img);
        }
        Batch {
            inputs: Tensor::from_vec(inputs, [self.test_images.len(), dim]),
            labels: self.test_labels.clone(),
        }
    }
}

/// Builds one smooth prototype image as a sum of random sinusoids.
fn smooth_prototype(spec: &DataSpec, amplitude: f32, rng: &mut Rng) -> Vec<f32> {
    let mut img = vec![0.0f32; spec.feature_dim()];
    for c in 0..spec.channels {
        // Three random plane waves per channel.
        for _ in 0..3 {
            let fx = rng.gen_range(0.5..2.0) * std::f32::consts::PI / spec.width as f32;
            let fy = rng.gen_range(0.5..2.0) * std::f32::consts::PI / spec.height as f32;
            let phase = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp = amplitude * rng.gen_range(0.5..1.0);
            for y in 0..spec.height {
                for x in 0..spec.width {
                    let i = (c * spec.height + y) * spec.width + x;
                    img[i] += amp * (fx * x as f32 + fy * y as f32 + phase).sin();
                }
            }
        }
    }
    img
}

/// Shifts by `(dx, dy)` with zero fill and optionally flips horizontally.
fn augment(img: &[f32], spec: &DataSpec, dx: isize, dy: isize, flip: bool) -> Vec<f32> {
    let (h, w) = (spec.height as isize, spec.width as isize);
    let mut out = vec![0.0f32; img.len()];
    for c in 0..spec.channels as isize {
        for y in 0..h {
            for x in 0..w {
                let sx = if flip { w - 1 - x } else { x } - dx;
                let sy = y - dy;
                if sx >= 0 && sx < w && sy >= 0 && sy < h {
                    out[((c * h + y) * w + x) as usize] = img[((c * h + sy) * w + sx) as usize];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_dataset_shapes() {
        let d = SyntheticImages::standard(1);
        assert_eq!(d.spec().feature_dim(), 192);
        assert_eq!(d.train_len(), 4096);
        assert_eq!(d.test_len(), 1024);
        let t = d.test_batch();
        assert_eq!(t.inputs.shape().dims(), &[1024, 192]);
        assert_eq!(t.labels.len(), 1024);
    }

    #[test]
    fn labels_are_balanced() {
        let d = SyntheticImages::standard(2);
        let mut counts = vec![0usize; 10];
        for &l in &d.test_batch().labels {
            counts[l] += 1;
        }
        for c in counts {
            assert!((c as i64 - 102).abs() <= 2, "class count {c}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticImages::standard(3);
        let b = SyntheticImages::standard(3);
        assert_eq!(a.test_batch(), b.test_batch());
        let mut r1 = threelc_tensor::rng(9);
        let mut r2 = threelc_tensor::rng(9);
        assert_eq!(
            a.sample_train_batch(&mut r1, 8),
            b.sample_train_batch(&mut r2, 8)
        );
    }

    #[test]
    fn train_batches_have_requested_size() {
        let d = SyntheticImages::standard(4);
        let mut rng = threelc_tensor::rng(0);
        let b = d.sample_train_batch(&mut rng, 32);
        assert_eq!(b.len(), 32);
        assert_eq!(b.inputs.shape().dims(), &[32, 192]);
        assert!(b.labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn augment_flip_is_involution() {
        let spec = DataSpec {
            channels: 1,
            height: 2,
            width: 3,
            classes: 1,
        };
        let img = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let flipped = augment(&img, &spec, 0, 0, true);
        assert_eq!(flipped, vec![3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
        assert_eq!(augment(&flipped, &spec, 0, 0, true), img);
    }

    #[test]
    fn augment_shift_pads_with_zeros() {
        let spec = DataSpec {
            channels: 1,
            height: 2,
            width: 2,
            classes: 1,
        };
        let img = vec![1.0, 2.0, 3.0, 4.0];
        // Shift right by one: first column becomes zero.
        let shifted = augment(&img, &spec, 1, 0, false);
        assert_eq!(shifted, vec![0.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn classes_are_distinguishable() {
        // A nearest-prototype classifier on clean test data should beat
        // chance by a wide margin (the task is learnable).
        let d = SyntheticImages::generate(
            SyntheticConfig {
                noise: 0.5,
                ..Default::default()
            },
            5,
        );
        // Estimate per-class means from training data, classify test data.
        let dim = d.spec().feature_dim();
        let mut means = vec![vec![0.0f64; dim]; 10];
        let mut counts = vec![0usize; 10];
        for (img, &l) in d.train_images.iter().zip(&d.train_labels) {
            for (m, &v) in means[l].iter_mut().zip(img) {
                *m += v as f64;
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let mut correct = 0;
        for (img, &l) in d.test_images.iter().zip(&d.test_labels) {
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f64 = means[a]
                        .iter()
                        .zip(img)
                        .map(|(m, &v)| (m - v as f64).powi(2))
                        .sum();
                    let db: f64 = means[b]
                        .iter()
                        .zip(img)
                        .map(|(m, &v)| (m - v as f64).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test_len() as f64;
        assert!(acc > 0.5, "nearest-prototype accuracy {acc} too low");
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let d = SyntheticImages::standard(0);
        let mut rng = threelc_tensor::rng(0);
        d.sample_train_batch(&mut rng, 0);
    }
}
