//! Model checkpointing: save and restore named parameter snapshots.
//!
//! The paper's evaluation reads "the snapshot of the global model" on a
//! dedicated node (§5.2); this module gives snapshots a durable, versioned
//! on-disk form so training runs can be checkpointed, resumed, or handed
//! to an external evaluator.

use crate::network::Network;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::Path;
use threelc_tensor::Tensor;

/// Current checkpoint format version.
const VERSION: u32 = 1;

/// A serializable named-parameter snapshot of a [`Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    version: u32,
    params: Vec<NamedTensor>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct NamedTensor {
    name: String,
    tensor: Tensor,
}

/// Error restoring a checkpoint into a network.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The file could not be read or parsed.
    Unreadable {
        /// Human-readable cause.
        reason: String,
    },
    /// The checkpoint version is not supported.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The checkpoint's parameters do not match the network's.
    Mismatch {
        /// Description of the first mismatch.
        reason: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Unreadable { reason } => write!(f, "unreadable checkpoint: {reason}"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found}")
            }
            CheckpointError::Mismatch { reason } => write!(f, "checkpoint mismatch: {reason}"),
        }
    }
}

impl Error for CheckpointError {}

impl Checkpoint {
    /// Captures a network's parameters.
    pub fn capture(net: &Network) -> Self {
        let params = net
            .param_names()
            .into_iter()
            .zip(net.params())
            .map(|(name, tensor)| NamedTensor {
                name,
                tensor: tensor.clone(),
            })
            .collect();
        Checkpoint {
            version: VERSION,
            params,
        }
    }

    /// Restores the captured parameters into a network.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] if parameter names, counts,
    /// or shapes differ from the network's, and
    /// [`CheckpointError::UnsupportedVersion`] for unknown versions.
    pub fn restore(&self, net: &mut Network) -> Result<(), CheckpointError> {
        if self.version != VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: self.version,
            });
        }
        let names = net.param_names();
        if names.len() != self.params.len() {
            return Err(CheckpointError::Mismatch {
                reason: format!(
                    "network has {} parameters, checkpoint has {}",
                    names.len(),
                    self.params.len()
                ),
            });
        }
        for (name, saved) in names.iter().zip(&self.params) {
            if name != &saved.name {
                return Err(CheckpointError::Mismatch {
                    reason: format!("parameter `{name}` vs checkpoint `{}`", saved.name),
                });
            }
        }
        for (param, saved) in net.params_mut().into_iter().zip(&self.params) {
            if param.shape() != saved.tensor.shape() {
                return Err(CheckpointError::Mismatch {
                    reason: format!(
                        "parameter `{}`: shape {} vs checkpoint {}",
                        saved.name,
                        param.shape(),
                        saved.tensor.shape()
                    ),
                });
            }
            *param = saved.tensor.clone();
        }
        Ok(())
    }

    /// Saves the checkpoint as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Unreadable`] on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self).map_err(|e| CheckpointError::Unreadable {
            reason: e.to_string(),
        })?;
        std::fs::write(path, json).map_err(|e| CheckpointError::Unreadable {
            reason: format!("{}: {e}", path.display()),
        })
    }

    /// Loads a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Unreadable`] on I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Unreadable {
            reason: format!("{}: {e}", path.display()),
        })?;
        serde_json::from_str(&text).map_err(|e| CheckpointError::Unreadable {
            reason: e.to_string(),
        })
    }

    /// Number of parameter tensors captured.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the checkpoint is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataSpec;
    use crate::models;

    fn spec() -> DataSpec {
        DataSpec {
            channels: 1,
            height: 4,
            width: 4,
            classes: 3,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("threelc-ckpt-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn capture_restore_roundtrip() {
        let net = models::residual_mlp(&spec(), 8, 1, 1);
        let ckpt = Checkpoint::capture(&net);
        let mut other = models::residual_mlp(&spec(), 8, 1, 99);
        assert_ne!(net.snapshot(), other.snapshot());
        ckpt.restore(&mut other).unwrap();
        assert_eq!(net.snapshot(), other.snapshot());
    }

    #[test]
    fn save_load_file_roundtrip() {
        let net = models::mlp(&spec(), &[6], 2);
        let path = tmp("a.json");
        Checkpoint::capture(&net).save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        let mut other = models::mlp(&spec(), &[6], 3);
        loaded.restore(&mut other).unwrap();
        assert_eq!(net.snapshot(), other.snapshot());
    }

    #[test]
    fn mismatched_architecture_rejected() {
        let net = models::mlp(&spec(), &[6], 0);
        let ckpt = Checkpoint::capture(&net);
        // Different width → shape mismatch (names match positionally).
        let mut wrong_width = models::mlp(&spec(), &[7], 0);
        assert!(matches!(
            ckpt.restore(&mut wrong_width),
            Err(CheckpointError::Mismatch { .. })
        ));
        // Different depth → count mismatch.
        let mut wrong_depth = models::mlp(&spec(), &[6, 6], 0);
        assert!(matches!(
            ckpt.restore(&mut wrong_depth),
            Err(CheckpointError::Mismatch { .. })
        ));
    }

    #[test]
    fn unreadable_paths_error() {
        assert!(matches!(
            Checkpoint::load(Path::new("/nonexistent/ckpt.json")),
            Err(CheckpointError::Unreadable { .. })
        ));
        let path = tmp("junk.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(Checkpoint::load(&path).is_err());
    }

    #[test]
    fn version_guard() {
        let net = models::mlp(&spec(), &[4], 0);
        let mut ckpt = Checkpoint::capture(&net);
        ckpt.version = 999;
        let mut other = models::mlp(&spec(), &[4], 0);
        assert!(matches!(
            ckpt.restore(&mut other),
            Err(CheckpointError::UnsupportedVersion { found: 999 })
        ));
    }

    #[test]
    fn len_and_empty() {
        let net = models::mlp(&spec(), &[4], 0);
        let ckpt = Checkpoint::capture(&net);
        assert_eq!(ckpt.len(), 4);
        assert!(!ckpt.is_empty());
    }
}
