//! Softmax cross-entropy loss.

use threelc_tensor::Tensor;

/// Computes the mean softmax cross-entropy loss and the gradient with
/// respect to the logits.
///
/// `logits` has shape `[batch, classes]`; `labels[i]` is the class index of
/// row `i`. The gradient is `(softmax − onehot) / batch`, ready to feed
/// into the network's backward pass.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len()` does not match the
/// batch dimension, or a label is out of range.
///
/// ```
/// use threelc_learning::softmax_cross_entropy;
/// use threelc_tensor::Tensor;
/// // Perfectly confident, correct prediction → loss near zero.
/// let logits = Tensor::from_vec(vec![100.0, 0.0], &[1, 2]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-6);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [batch, classes]");
    let (batch, classes) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), batch, "one label per batch row");

    let x = logits.as_slice();
    let mut grad = vec![0.0f32; batch * classes];
    let mut loss = 0.0f64;
    for r in 0..batch {
        let row = &x[r * classes..(r + 1) * classes];
        let label = labels[r];
        assert!(label < classes, "label {label} out of range ({classes})");
        // Numerically stable log-softmax.
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let sum_exp: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let log_sum = max + sum_exp.ln();
        loss += (log_sum - row[label]) as f64;
        let grow = &mut grad[r * classes..(r + 1) * classes];
        for (c, g) in grow.iter_mut().enumerate() {
            let softmax = (row[c] - log_sum).exp();
            *g = (softmax - if c == label { 1.0 } else { 0.0 }) / batch as f32;
        }
    }
    (
        (loss / batch as f64) as f32,
        Tensor::from_vec(grad, [batch, classes]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let logits = Tensor::zeros([4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 0.3, 2.0, 0.1, -0.2], [2, 3]);
        let labels = [1usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grad.as_slice()[i];
            assert!(
                (num - ana).abs() < 1e-3,
                "grad[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Tensor::from_vec(vec![1e4, -1e4, 0.0, 0.0], [2, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1, 0]);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_label_panics() {
        softmax_cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }
}
