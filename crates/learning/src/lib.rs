//! Neural-network training substrate for the 3LC reproduction.
//!
//! The paper evaluates 3LC by training ResNet-110 image classifiers for
//! CIFAR-10 on TensorFlow. This crate is the from-scratch stand-in for that
//! stack: feedforward networks with residual (identity-mapping) blocks,
//! manual backpropagation, SGD with momentum and weight decay, the
//! cosine-decay learning-rate schedule the paper uses, and a synthetic
//! CIFAR-like dataset with crop/flip augmentation (see `DESIGN.md` §3 for
//! why this substitution preserves the behaviours 3LC's evaluation
//! depends on).
//!
//! The central types are:
//!
//! - [`Network`] — an ordered stack of [`Layer`]s with named parameter
//!   tensors, exposing exactly the interface a parameter server needs:
//!   read/overwrite parameters and compute per-parameter gradients.
//! - [`SgdMomentum`] — TensorFlow `MomentumOptimizer` semantics plus weight
//!   decay.
//! - [`LrSchedule`] — cosine decay without restarts (Loshchilov & Hutter),
//!   as in the paper's training configuration.
//! - [`SyntheticImages`] — a procedurally generated image classification
//!   dataset with the same augmentations the paper applies (random crop and
//!   horizontal flip).
//!
//! ```
//! use threelc_learning::{models, Batch, LrSchedule, SgdMomentum, SyntheticImages};
//!
//! let data = SyntheticImages::standard(42);
//! let mut net = models::residual_mlp(&data.spec(), 16, 1, 7);
//! let mut opt = SgdMomentum::new(0.9, 1e-4);
//! let schedule = LrSchedule::cosine(0.1, 0.001, 100);
//! let mut rng = threelc_tensor::rng(0);
//! for step in 0..3 {
//!     let batch = data.sample_train_batch(&mut rng, 8);
//!     let (loss, grads) = net.loss_and_gradients(&batch);
//!     assert!(loss.is_finite());
//!     opt.apply(&mut net, &grads, schedule.lr_at(step));
//! }
//! ```

pub mod checkpoint;
pub mod data;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod network;
pub mod optim;
pub mod regression;
pub mod schedule;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use data::{Batch, DataSpec, SyntheticImages};
pub use layers::{
    BatchNormLayer, Conv2dLayer, DenseLayer, GlobalAvgPoolLayer, Layer, LayerCache, ReluLayer,
    ResidualBlock,
};
pub use loss::softmax_cross_entropy;
pub use metrics::{accuracy, Evaluation};
pub use network::Network;
pub use optim::SgdMomentum;
pub use schedule::LrSchedule;
