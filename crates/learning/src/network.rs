//! The [`Network`] type: an ordered layer stack with named parameters.

use crate::data::Batch;
use crate::layers::Layer;
use crate::loss::softmax_cross_entropy;
use threelc_tensor::Tensor;

/// A feedforward network: an ordered stack of [`Layer`]s ending in logits.
///
/// The parameter list is the flattened, ordered concatenation of every
/// layer's parameters; gradients from
/// [`loss_and_gradients`](Network::loss_and_gradients) use the same order.
/// This flat, named view is exactly what the parameter-server simulator
/// partitions across compression contexts.
#[derive(Clone)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_dim: usize,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("input_dim", &self.input_dim)
            .field(
                "layers",
                &self.layers.iter().map(|l| l.kind()).collect::<Vec<_>>(),
            )
            .field("num_params", &self.num_params())
            .finish()
    }
}

impl Network {
    /// Creates a network from a layer stack.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer dimensions are incompatible (checked by
    /// threading `input_dim` through every layer's `output_dim`).
    pub fn new(input_dim: usize, layers: Vec<Box<dyn Layer>>) -> Self {
        let mut dim = input_dim;
        for layer in &layers {
            dim = layer.output_dim(dim);
        }
        Network { layers, input_dim }
    }

    /// The expected input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The output (logit) dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers
            .iter()
            .fold(self.input_dim, |d, l| l.output_dim(d))
    }

    /// Runs the forward pass, returning logits.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut h = input.clone();
        for layer in &self.layers {
            let (out, _) = layer.forward(&h);
            h = out;
        }
        h
    }

    /// Computes mean cross-entropy loss and per-parameter gradients for a
    /// batch. Gradient order matches [`param_names`](Network::param_names).
    pub fn loss_and_gradients(&self, batch: &Batch) -> (f32, Vec<Tensor>) {
        self.loss_and_gradients_with(batch.inputs.clone(), |logits| {
            softmax_cross_entropy(logits, &batch.labels)
        })
    }

    /// Computes gradients under an arbitrary loss: `loss` maps the
    /// network's output to `(loss value, d loss / d output)`.
    ///
    /// This is what makes the training substrate loss-agnostic — the
    /// regression workload plugs in mean squared error here while the
    /// classification path uses softmax cross-entropy.
    pub fn loss_and_gradients_with(
        &self,
        inputs: Tensor,
        loss: impl FnOnce(&Tensor) -> (f32, Tensor),
    ) -> (f32, Vec<Tensor>) {
        // Forward, keeping caches.
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = inputs;
        for layer in &self.layers {
            let (out, cache) = layer.forward(&h);
            caches.push(cache);
            h = out;
        }
        let (loss_value, mut grad) = loss(&h);

        // Backward.
        let mut per_layer_grads: Vec<Vec<Tensor>> = vec![Vec::new(); self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let back = layer.backward(&caches[i], &grad);
            grad = back.grad_input;
            per_layer_grads[i] = back.param_grads;
        }
        (loss_value, per_layer_grads.into_iter().flatten().collect())
    }

    /// Mean loss on a batch without computing gradients.
    pub fn loss(&self, batch: &Batch) -> f32 {
        let logits = self.forward(&batch.inputs);
        softmax_cross_entropy(&logits, &batch.labels).0
    }

    /// Argmax class predictions for a batch of inputs.
    pub fn predict(&self, inputs: &Tensor) -> Vec<usize> {
        let logits = self.forward(inputs);
        let (batch, classes) = (logits.shape().dim(0), logits.shape().dim(1));
        let data = logits.as_slice();
        (0..batch)
            .map(|r| {
                let row = &data[r * classes..(r + 1) * classes];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
                    .map(|(i, _)| i)
                    .expect("at least one class")
            })
            .collect()
    }

    /// Immutable views of all parameters, in network order.
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable views of all parameters, in network order.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Names of all parameters, in network order.
    pub fn param_names(&self) -> Vec<String> {
        self.layers.iter().flat_map(|l| l.param_names()).collect()
    }

    /// Clones all parameter tensors (a model snapshot).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params().into_iter().cloned().collect()
    }

    /// Overwrites all parameters from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the parameter count or shapes.
    pub fn restore(&mut self, values: &[Tensor]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), values.len(), "parameter count mismatch");
        for (p, v) in params.iter_mut().zip(values) {
            assert_eq!(p.shape(), v.shape(), "parameter shape mismatch");
            **p = v.clone();
        }
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{DenseLayer, ReluLayer, ResidualBlock};

    fn tiny_net(seed: u64) -> Network {
        let mut rng = threelc_tensor::rng(seed);
        Network::new(
            4,
            vec![
                Box::new(DenseLayer::new("fc0", 4, 8, &mut rng)),
                Box::new(ReluLayer::new()),
                Box::new(ResidualBlock::new("blk0", 8, 8, &mut rng)),
                Box::new(DenseLayer::new_xavier("out", 8, 3, &mut rng)),
            ],
        )
    }

    fn tiny_batch(seed: u64) -> Batch {
        let mut rng = threelc_tensor::rng(seed);
        Batch {
            inputs: threelc_tensor::Initializer::Normal {
                mean: 0.0,
                std_dev: 1.0,
            }
            .init(&mut rng, [6, 4]),
            labels: vec![0, 1, 2, 0, 1, 2],
        }
    }

    #[test]
    fn dims_and_param_bookkeeping() {
        let net = tiny_net(0);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.params().len(), net.param_names().len());
        // stem (w+b) + residual block (2 BN pairs + 2 dense) + head (w+b).
        assert_eq!(
            net.num_params(),
            (4 * 8 + 8) + (2 * 8 + 2 * 8) + (8 * 8 + 8) * 2 + (8 * 3 + 3)
        );
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn incompatible_layers_panic() {
        let mut rng = threelc_tensor::rng(0);
        Network::new(
            4,
            vec![
                Box::new(DenseLayer::new("a", 4, 8, &mut rng)),
                Box::new(DenseLayer::new("b", 9, 3, &mut rng)), // wrong input dim
            ],
        );
    }

    #[test]
    fn gradients_match_finite_differences_through_loss() {
        let net = tiny_net(1);
        let batch = tiny_batch(2);
        let (_, grads) = net.loss_and_gradients(&batch);
        let eps = 3e-3f32;
        // Spot-check a handful of parameters in each tensor.
        let mut net_mut = net.clone();
        for (pi, g) in grads.iter().enumerate() {
            for i in (0..g.len()).step_by((g.len() / 3).max(1)) {
                let orig = net_mut.params()[pi].as_slice()[i];
                net_mut.params_mut()[pi].as_mut_slice()[i] = orig + eps;
                let lp = net_mut.loss(&batch);
                net_mut.params_mut()[pi].as_mut_slice()[i] = orig - eps;
                let lm = net_mut.loss(&batch);
                net_mut.params_mut()[pi].as_mut_slice()[i] = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = g.as_slice()[i];
                // Loose tolerance: f32 arithmetic plus ReLU kinks crossed
                // by the finite-difference step add O(eps) noise.
                assert!(
                    (num - ana).abs() < 6e-2 * (1.0 + num.abs()),
                    "param {pi}[{i}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let net = tiny_net(3);
        let snap = net.snapshot();
        let mut other = tiny_net(99); // different init
        other.restore(&snap);
        let batch = tiny_batch(4);
        assert_eq!(net.loss(&batch), other.loss(&batch));
    }

    #[test]
    fn clone_is_independent() {
        let net = tiny_net(5);
        let mut copy = net.clone();
        copy.params_mut()[0].map_inplace(|_| 0.0);
        assert_ne!(
            net.params()[0].as_slice(),
            copy.params()[0].as_slice(),
            "clone must not share storage"
        );
    }

    #[test]
    fn predict_returns_valid_classes() {
        let net = tiny_net(6);
        let batch = tiny_batch(7);
        let preds = net.predict(&batch.inputs);
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|&c| c < 3));
    }

    #[test]
    fn debug_output_is_informative() {
        let s = format!("{:?}", tiny_net(0));
        assert!(s.contains("dense"));
        assert!(s.contains("num_params"));
    }
}
