//! Standard model constructors for the reproduction experiments.

use crate::data::DataSpec;
use crate::layers::{DenseLayer, Layer, ReluLayer, ResidualBlock};
use crate::network::Network;

/// Builds the reproduction's stand-in for ResNet-110: an input projection,
/// `blocks` residual blocks of width `width`, and a logit head.
///
/// Like the ResNet the paper trains, most parameters live in square
/// (`width × width`-ish) weight tensors inside identity-mapped blocks, and
/// the small bias tensors mirror the "small layers" (batch normalization)
/// that the paper excludes from compression.
///
/// ```
/// use threelc_learning::{models, DataSpec};
/// let spec = DataSpec { channels: 3, height: 8, width: 8, classes: 10 };
/// let net = models::residual_mlp(&spec, 64, 3, 0);
/// assert_eq!(net.input_dim(), 192);
/// assert_eq!(net.output_dim(), 10);
/// ```
pub fn residual_mlp(spec: &DataSpec, width: usize, blocks: usize, seed: u64) -> Network {
    let mut rng = threelc_tensor::rng(seed);
    let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(blocks + 3);
    layers.push(Box::new(DenseLayer::new(
        "stem",
        spec.feature_dim(),
        width,
        &mut rng,
    )));
    for b in 0..blocks {
        layers.push(Box::new(ResidualBlock::new(
            &format!("block{b}"),
            width,
            width,
            &mut rng,
        )));
    }
    layers.push(Box::new(ReluLayer::new()));
    layers.push(Box::new(DenseLayer::new_xavier(
        "head",
        width,
        spec.classes,
        &mut rng,
    )));
    Network::new(spec.feature_dim(), layers)
}

/// A plain multilayer perceptron (no residual connections), for tests and
/// the quickstart example.
pub fn mlp(spec: &DataSpec, hidden: &[usize], seed: u64) -> Network {
    let mut rng = threelc_tensor::rng(seed);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut dim = spec.feature_dim();
    for (i, &h) in hidden.iter().enumerate() {
        layers.push(Box::new(DenseLayer::new(
            format!("fc{i}"),
            dim,
            h,
            &mut rng,
        )));
        layers.push(Box::new(ReluLayer::new()));
        dim = h;
    }
    layers.push(Box::new(DenseLayer::new_xavier(
        "head",
        dim,
        spec.classes,
        &mut rng,
    )));
    Network::new(spec.feature_dim(), layers)
}

/// The default experiment model: matches the scale used throughout the
/// benchmark harness (width 96, 4 residual blocks, ≈ 93k parameters).
pub fn experiment_model(spec: &DataSpec, seed: u64) -> Network {
    residual_mlp(spec, 96, 4, seed)
}

/// A small convolutional ResNet in the style of the paper's workload:
/// a conv stem, `blocks` residual conv blocks (BN → ReLU → conv, twice),
/// global average pooling, and a dense head.
///
/// Convolution on a single CPU core is much slower than the dense model,
/// so this model backs fidelity spot-checks and tests rather than the
/// default experiment grid.
pub fn conv_resnet(spec: &DataSpec, channels: usize, blocks: usize, seed: u64) -> Network {
    use crate::layers::{BatchNormLayer, Conv2dLayer, GlobalAvgPoolLayer, Residual};
    let mut rng = threelc_tensor::rng(seed);
    let (h, w) = (spec.height, spec.width);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(Conv2dLayer::new(
        "stem",
        spec.channels,
        channels,
        h,
        w,
        3,
        &mut rng,
    )));
    for b in 0..blocks {
        let name = format!("block{b}");
        layers.push(Box::new(Residual::new(vec![
            Box::new(BatchNormLayer::new(format!("{name}/bn1"), channels * h * w)),
            Box::new(ReluLayer::new()),
            Box::new(Conv2dLayer::new(
                format!("{name}/conv1"),
                channels,
                channels,
                h,
                w,
                3,
                &mut rng,
            )),
            Box::new(BatchNormLayer::new(format!("{name}/bn2"), channels * h * w)),
            Box::new(ReluLayer::new()),
            Box::new(Conv2dLayer::new(
                format!("{name}/conv2"),
                channels,
                channels,
                h,
                w,
                3,
                &mut rng,
            )),
        ])));
    }
    layers.push(Box::new(ReluLayer::new()));
    layers.push(Box::new(GlobalAvgPoolLayer::new(channels, h, w)));
    layers.push(Box::new(DenseLayer::new_xavier(
        "head",
        channels,
        spec.classes,
        &mut rng,
    )));
    Network::new(spec.feature_dim(), layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticImages;
    use crate::metrics::Evaluation;
    use crate::optim::SgdMomentum;
    use crate::schedule::LrSchedule;

    fn spec() -> DataSpec {
        DataSpec {
            channels: 3,
            height: 8,
            width: 8,
            classes: 10,
        }
    }

    #[test]
    fn residual_mlp_dims() {
        let net = residual_mlp(&spec(), 32, 2, 0);
        assert_eq!(net.input_dim(), 192);
        assert_eq!(net.output_dim(), 10);
        // stem (w+b) + 2 blocks × (2 BN + 2 dense) × 2 tensors + head (w+b).
        assert_eq!(net.params().len(), 2 + 2 * 8 + 2);
    }

    #[test]
    fn mlp_dims() {
        let net = mlp(&spec(), &[64, 32], 0);
        assert_eq!(net.output_dim(), 10);
        assert_eq!(net.params().len(), 6);
    }

    #[test]
    fn deterministic_construction() {
        let a = residual_mlp(&spec(), 16, 1, 7);
        let b = residual_mlp(&spec(), 16, 1, 7);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn conv_resnet_dims_and_gradient_flow() {
        let net = conv_resnet(&spec(), 8, 1, 0);
        assert_eq!(net.input_dim(), 192);
        assert_eq!(net.output_dim(), 10);
        // stem conv (w+b) + block (2 BN + 2 conv = 8) + head (w+b).
        assert_eq!(net.params().len(), 12);
        let data = SyntheticImages::generate(
            crate::data::SyntheticConfig {
                train_examples: 64,
                test_examples: 16,
                ..Default::default()
            },
            1,
        );
        let mut rng = threelc_tensor::rng(2);
        let batch = data.sample_train_batch(&mut rng, 4);
        let (loss, grads) = net.loss_and_gradients(&batch);
        assert!(loss.is_finite());
        assert_eq!(grads.len(), net.params().len());
        assert!(
            grads.iter().any(|g| g.max_abs() > 0.0),
            "gradients must flow through the conv stack"
        );
    }

    #[test]
    fn conv_resnet_learns_on_tiny_task() {
        let data = SyntheticImages::generate(
            crate::data::SyntheticConfig {
                train_examples: 256,
                test_examples: 64,
                noise: 0.5,
                ..Default::default()
            },
            7,
        );
        let mut net = conv_resnet(&data.spec(), 6, 1, 3);
        let mut opt = SgdMomentum::paper_defaults();
        let steps = 250;
        let schedule = LrSchedule::paper_default(steps);
        let mut rng = threelc_tensor::rng(5);
        for t in 0..steps {
            let batch = data.sample_train_batch(&mut rng, 16);
            let (_, grads) = net.loss_and_gradients(&batch);
            opt.apply(&mut net, &grads, schedule.lr_at(t));
        }
        let eval = Evaluation::of(&net, &data.test_batch());
        assert!(
            eval.accuracy > 0.3,
            "conv net should beat chance, got {}",
            eval.accuracy
        );
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        // Single-node smoke test: a small model on a small dataset should
        // learn well past the 10% chance level within a few hundred steps.
        let data = SyntheticImages::standard(11);
        let mut net = residual_mlp(&data.spec(), 48, 1, 3);
        let mut opt = SgdMomentum::paper_defaults();
        let steps = 300;
        let schedule = LrSchedule::paper_default(steps);
        let mut rng = threelc_tensor::rng(5);
        let test = data.test_batch();
        let initial = Evaluation::of(&net, &test);
        for t in 0..steps {
            let batch = data.sample_train_batch(&mut rng, 32);
            let (_, grads) = net.loss_and_gradients(&batch);
            opt.apply(&mut net, &grads, schedule.lr_at(t));
        }
        let fin = Evaluation::of(&net, &test);
        assert!(
            fin.loss < initial.loss,
            "loss should drop: {} → {}",
            initial.loss,
            fin.loss
        );
        assert!(
            fin.accuracy > 0.5,
            "accuracy {} should beat chance by a wide margin",
            fin.accuracy
        );
    }
}
