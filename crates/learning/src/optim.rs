//! SGD with momentum and weight decay.

use crate::network::Network;
use threelc_tensor::Tensor;

/// TensorFlow `MomentumOptimizer` semantics with decoupled weight decay
/// added to the gradient, matching the paper's training configuration
/// (momentum 0.9, weight decay 1e-4 — §5.2):
///
/// ```text
/// g ← grad + weight_decay · param
/// v ← momentum · v + g
/// param ← param − lr · v
/// ```
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl SgdMomentum {
    /// Creates an optimizer with the given momentum and weight decay.
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        SgdMomentum {
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// The paper's configuration: momentum 0.9, weight decay 1e-4.
    pub fn paper_defaults() -> Self {
        SgdMomentum::new(0.9, 1e-4)
    }

    /// Applies one update step to `net` with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the network's parameter list (count
    /// or shapes), or differs from the shapes seen on the first call.
    pub fn apply(&mut self, net: &mut Network, grads: &[Tensor], lr: f32) {
        let mut params = net.params_mut();
        assert_eq!(params.len(), grads.len(), "gradient count mismatch");
        if self.velocity.is_empty() {
            self.velocity = grads
                .iter()
                .map(|g| Tensor::zeros(g.shape().clone()))
                .collect();
        }
        assert_eq!(self.velocity.len(), grads.len(), "velocity count mismatch");
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            assert_eq!(p.shape(), g.shape(), "gradient shape mismatch");
            let (pd, gd, vd) = (p.as_mut_slice(), g.as_slice(), v.as_mut_slice());
            for i in 0..pd.len() {
                let grad = gd[i] + self.weight_decay * pd[i];
                vd[i] = self.momentum * vd[i] + grad;
                pd[i] -= lr * vd[i];
            }
        }
    }

    /// Resets accumulated momentum (e.g. when restarting training).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }

    /// The configured momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// The configured weight decay.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }
}

/// Applies a raw delta to every parameter: `param += delta`.
///
/// The parameter-server simulator uses this to apply aggregated,
/// (de)compressed model deltas to a worker's local model.
///
/// # Panics
///
/// Panics if `deltas` does not match the network's parameters.
pub fn apply_deltas(net: &mut Network, deltas: &[Tensor]) {
    let mut params = net.params_mut();
    assert_eq!(params.len(), deltas.len(), "delta count mismatch");
    for (p, d) in params.iter_mut().zip(deltas) {
        p.add_assign(d).expect("delta shape matches parameter");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{DenseLayer, Layer};

    fn one_param_net() -> Network {
        let mut rng = threelc_tensor::rng(0);
        let mut layer = DenseLayer::new("d", 1, 1, &mut rng);
        layer.params_mut()[0].as_mut_slice()[0] = 1.0;
        Network::new(1, vec![Box::new(layer)])
    }

    fn grads_of(net: &Network, w: f32, b: f32) -> Vec<Tensor> {
        let _ = net;
        vec![
            Tensor::from_vec(vec![w], [1, 1]),
            Tensor::from_vec(vec![b], [1, 1]),
        ]
    }

    #[test]
    fn plain_sgd_step() {
        let mut net = one_param_net();
        let mut opt = SgdMomentum::new(0.0, 0.0);
        let g = grads_of(&net, 0.5, 0.0);
        opt.apply(&mut net, &g, 0.1);
        assert!((net.params()[0].as_slice()[0] - 0.95).abs() < 1e-7);
    }

    #[test]
    fn momentum_accumulates() {
        let mut net = one_param_net();
        let mut opt = SgdMomentum::new(0.9, 0.0);
        let g = grads_of(&net, 1.0, 0.0);
        opt.apply(&mut net, &g, 0.1); // v=1.0, p = 1 - 0.1
        opt.apply(&mut net, &g, 0.1); // v=1.9, p = 0.9 - 0.19
        let p = net.params()[0].as_slice()[0];
        assert!((p - (1.0 - 0.1 - 0.19)).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut net = one_param_net();
        let mut opt = SgdMomentum::new(0.0, 0.1);
        let g = grads_of(&net, 0.0, 0.0);
        opt.apply(&mut net, &g, 1.0);
        // p = 1 − 1.0 · (0 + 0.1·1) = 0.9
        assert!((net.params()[0].as_slice()[0] - 0.9).abs() < 1e-7);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut net = one_param_net();
        let mut opt = SgdMomentum::new(0.9, 0.0);
        let g = grads_of(&net, 1.0, 0.0);
        opt.apply(&mut net, &g, 0.1);
        opt.reset();
        let before = net.params()[0].as_slice()[0];
        opt.apply(&mut net, &g, 0.1);
        let after = net.params()[0].as_slice()[0];
        // Without the old velocity the step is exactly lr · g.
        assert!((before - after - 0.1).abs() < 1e-6);
    }

    #[test]
    fn apply_deltas_adds() {
        let mut net = one_param_net();
        let deltas = grads_of(&net, 0.25, -0.5);
        apply_deltas(&mut net, &deltas);
        assert!((net.params()[0].as_slice()[0] - 1.25).abs() < 1e-7);
        assert!((net.params()[1].as_slice()[0] + 0.5).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn wrong_grad_count_panics() {
        let mut net = one_param_net();
        SgdMomentum::new(0.9, 0.0).apply(&mut net, &[], 0.1);
    }

    #[test]
    fn paper_defaults() {
        let opt = SgdMomentum::paper_defaults();
        assert_eq!(opt.momentum(), 0.9);
        assert_eq!(opt.weight_decay(), 1e-4);
    }
}
