//! A synthetic regression workload.
//!
//! 3LC is "a point-to-point tensor compression scheme" that works for any
//! state-change tensors, not just image-classifier gradients (§3, §6 —
//! unlike sufficient-factor or momentum-modified schemes it does not
//! assume layer types or loss functions). This module provides a second,
//! structurally different task — nonlinear scalar regression under mean
//! squared error — used by integration tests to demonstrate that
//! generality end-to-end.

use crate::network::Network;
use rand::Rng as _;
use threelc_tensor::init::sample_standard_normal;
use threelc_tensor::{Rng, Tensor};

/// A regression minibatch: inputs `[batch, features]` and scalar targets
/// `[batch, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionBatch {
    /// Input features.
    pub inputs: Tensor,
    /// Regression targets, one per row.
    pub targets: Tensor,
}

/// Mean squared error loss: `mean((pred − target)²)` with its gradient
/// with respect to the predictions.
///
/// # Panics
///
/// Panics if shapes differ or the batch is empty.
///
/// ```
/// use threelc_learning::regression::mse_loss;
/// use threelc_tensor::Tensor;
/// let pred = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
/// let target = Tensor::from_vec(vec![1.0, 0.0], &[2, 1]);
/// let (loss, _grad) = mse_loss(&pred, &target);
/// assert_eq!(loss, 2.0); // (0² + 2²) / 2
/// ```
pub fn mse_loss(predictions: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        predictions.shape(),
        targets.shape(),
        "prediction/target shape mismatch"
    );
    let n = predictions.len();
    assert!(n > 0, "cannot score an empty batch");
    let mut loss = 0.0f64;
    let mut grad = Vec::with_capacity(n);
    for (&p, &t) in predictions.iter().zip(targets.iter()) {
        let d = p - t;
        loss += (d * d) as f64;
        grad.push(2.0 * d / n as f32);
    }
    (
        (loss / n as f64) as f32,
        Tensor::from_vec(grad, predictions.shape().clone()),
    )
}

/// A synthetic nonlinear regression dataset:
/// `y = sin(w₁·x) + 0.5·(w₂·x)² + ε`.
#[derive(Debug, Clone)]
pub struct SyntheticRegression {
    features: usize,
    w1: Vec<f32>,
    w2: Vec<f32>,
    noise: f32,
}

impl SyntheticRegression {
    /// Creates a generator over `features`-dimensional inputs with
    /// Gaussian label noise of the given standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize, noise: f32, seed: u64) -> Self {
        assert!(features > 0, "need at least one feature");
        let mut rng = threelc_tensor::rng(seed);
        let scale = 1.0 / (features as f32).sqrt();
        let w1 = (0..features)
            .map(|_| scale * sample_standard_normal(&mut rng))
            .collect();
        let w2 = (0..features)
            .map(|_| scale * sample_standard_normal(&mut rng))
            .collect();
        SyntheticRegression {
            features,
            w1,
            w2,
            noise,
        }
    }

    /// Input dimensionality.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Samples a batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn sample(&self, rng: &mut Rng, batch_size: usize) -> RegressionBatch {
        assert!(batch_size > 0, "batch size must be positive");
        let mut inputs = Vec::with_capacity(batch_size * self.features);
        let mut targets = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let x: Vec<f32> = (0..self.features)
                .map(|_| sample_standard_normal(rng))
                .collect();
            let a: f32 = x.iter().zip(&self.w1).map(|(xi, wi)| xi * wi).sum();
            let b: f32 = x.iter().zip(&self.w2).map(|(xi, wi)| xi * wi).sum();
            let y = a.sin() + 0.5 * b * b + self.noise * sample_standard_normal(rng);
            let _ = rng.gen::<u8>(); // decorrelate successive rows cheaply
            inputs.extend_from_slice(&x);
            targets.push(y);
        }
        RegressionBatch {
            inputs: Tensor::from_vec(inputs, [batch_size, self.features]),
            targets: Tensor::from_vec(targets, [batch_size, 1]),
        }
    }
}

/// Computes MSE loss and parameter gradients of a network on a regression
/// batch (the regression analog of
/// [`Network::loss_and_gradients`]).
pub fn regression_loss_and_gradients(net: &Network, batch: &RegressionBatch) -> (f32, Vec<Tensor>) {
    // Manual forward with caches (mirrors Network::loss_and_gradients but
    // swaps the loss function).
    net.loss_and_gradients_with(batch.inputs.clone(), |logits| {
        mse_loss(logits, &batch.targets)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{DenseLayer, ReluLayer};
    use crate::optim::SgdMomentum;

    #[test]
    fn mse_known_values() {
        let p = Tensor::from_vec(vec![3.0], [1, 1]);
        let t = Tensor::from_vec(vec![1.0], [1, 1]);
        let (loss, grad) = mse_loss(&p, &t);
        assert_eq!(loss, 4.0);
        assert_eq!(grad.as_slice(), &[4.0]); // 2·(3−1)/1
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let p = Tensor::from_vec(vec![0.3, -0.7, 1.2], [3, 1]);
        let t = Tensor::from_vec(vec![0.0, 0.5, 1.0], [3, 1]);
        let (_, grad) = mse_loss(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = p.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = p.clone();
            minus.as_mut_slice()[i] -= eps;
            let num = (mse_loss(&plus, &t).0 - mse_loss(&minus, &t).0) / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn dataset_is_deterministic_and_shaped() {
        let d = SyntheticRegression::new(8, 0.05, 3);
        let mut r1 = threelc_tensor::rng(0);
        let mut r2 = threelc_tensor::rng(0);
        let a = d.sample(&mut r1, 16);
        let b = d.sample(&mut r2, 16);
        assert_eq!(a, b);
        assert_eq!(a.inputs.shape().dims(), &[16, 8]);
        assert_eq!(a.targets.shape().dims(), &[16, 1]);
    }

    #[test]
    fn network_learns_the_function() {
        let data = SyntheticRegression::new(6, 0.02, 7);
        let mut rng = threelc_tensor::rng(1);
        let mut init_rng = threelc_tensor::rng(2);
        let mut net = Network::new(
            6,
            vec![
                Box::new(DenseLayer::new("fc0", 6, 32, &mut init_rng)),
                Box::new(ReluLayer::new()),
                Box::new(DenseLayer::new("fc1", 32, 16, &mut init_rng)),
                Box::new(ReluLayer::new()),
                Box::new(DenseLayer::new_xavier("head", 16, 1, &mut init_rng)),
            ],
        );
        let mut opt = SgdMomentum::new(0.9, 1e-4);
        let eval = |net: &Network, rng: &mut threelc_tensor::Rng| {
            let batch = data.sample(rng, 256);
            mse_loss(&net.forward(&batch.inputs), &batch.targets).0
        };
        let before = eval(&net, &mut rng);
        for _ in 0..400 {
            let batch = data.sample(&mut rng, 32);
            let (_, grads) = regression_loss_and_gradients(&net, &batch);
            opt.apply(&mut net, &grads, 0.01);
        }
        let after = eval(&net, &mut rng);
        assert!(
            after < before * 0.5,
            "regression loss should halve: {before} → {after}"
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mse_shape_mismatch_panics() {
        mse_loss(&Tensor::zeros([2, 1]), &Tensor::zeros([3, 1]));
    }
}
